//! User-level traps on forwarded references and recoverable supervisor
//! traps on machine faults (paper §3.2).
//!
//! The paper proposes a lightweight user-level trapping mechanism invoked
//! upon accessing a forwarded location, useful for (i) profiling tools that
//! record which references experience forwarding, and (ii) on-the-fly
//! optimization that updates stray pointers to point directly at final
//! addresses. The [`crate::Machine`] implements both flavours:
//!
//! - **Profiling traps**: while traps are enabled, every forwarded
//!   reference pays the trap penalty and deposits a [`TrapInfo`] record
//!   that the application can drain with [`crate::Machine::take_traps`] and
//!   act on (e.g. rewrite its own stray pointers with ordinary stores).
//! - **Recoverable supervisor traps**: a [`FaultHandler`] registered with
//!   [`crate::Machine::set_fault_handler`] is invoked when a fallible
//!   `try_*` access raises a [`crate::MachineFault`]. The handler runs with
//!   full access to the machine — it can repair a broken forwarding chain
//!   with `Unforwarded_Write`, free memory, or log — and returns a
//!   [`TrapOutcome`] deciding whether the faulting access is retried or the
//!   fault propagates. Each delivery charges the configured trap penalty,
//!   modelling exception dispatch plus handler execution.

use crate::fault::MachineFault;
use crate::machine::Machine;
use memfwd_tagmem::Addr;

/// Decision returned by a [`FaultHandler`] after inspecting (and possibly
/// repairing) a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapOutcome {
    /// Retry the faulting access; if the handler repaired the damage the
    /// access now succeeds. Retries are bounded (a handler that never
    /// repairs cannot livelock the machine — the fault is propagated after
    /// [`MAX_FAULT_RETRIES`] deliveries).
    Retry,
    /// Give up: propagate the fault to the caller of the `try_*` operation.
    Abort,
}

/// Upper bound on handler-retry deliveries for a single access; after this
/// many [`TrapOutcome::Retry`] responses the fault propagates anyway.
pub const MAX_FAULT_RETRIES: u32 = 8;

/// A recoverable supervisor trap handler (paper §3.2's repair story).
///
/// Invoked by the fallible `try_*` machine operations when a fault is
/// raised. The handler receives the machine (so it can repair state — the
/// cycles it spends doing so are charged to the run like any other work)
/// and the typed fault.
pub type FaultHandler = Box<dyn FnMut(&mut Machine, &MachineFault) -> TrapOutcome>;

/// One forwarded reference observed by the trap mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrapInfo {
    /// The initial (stale) address the program used.
    pub initial: Addr,
    /// The final address the reference resolved to.
    pub final_addr: Addr,
    /// Forwarding hops dereferenced.
    pub hops: u32,
    /// Whether the reference was a store.
    pub is_store: bool,
}

impl TrapInfo {
    /// The pointer correction a fixup handler would apply: what to add to
    /// the stray pointer to reach the object's new home.
    pub fn displacement(&self) -> i64 {
        self.final_addr.distance_from(self.initial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displacement() {
        let t = TrapInfo {
            initial: Addr(0x100),
            final_addr: Addr(0x500),
            hops: 1,
            is_store: false,
        };
        assert_eq!(t.displacement(), 0x400);
    }
}
