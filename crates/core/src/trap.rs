//! User-level traps on forwarded references (paper §3.2).
//!
//! The paper proposes a lightweight user-level trapping mechanism invoked
//! upon accessing a forwarded location, useful for (i) profiling tools that
//! record which references experience forwarding, and (ii) on-the-fly
//! optimization that updates stray pointers to point directly at final
//! addresses. The [`crate::Machine`] implements the profiling flavour:
//! while traps are enabled, every forwarded reference pays the trap penalty
//! and deposits a [`TrapInfo`] record that the application can drain with
//! [`crate::Machine::take_traps`] and act on (e.g. rewrite its own stray
//! pointers with ordinary stores).

use memfwd_tagmem::Addr;

/// One forwarded reference observed by the trap mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrapInfo {
    /// The initial (stale) address the program used.
    pub initial: Addr,
    /// The final address the reference resolved to.
    pub final_addr: Addr,
    /// Forwarding hops dereferenced.
    pub hops: u32,
    /// Whether the reference was a store.
    pub is_store: bool,
}

impl TrapInfo {
    /// The pointer correction a fixup handler would apply: what to add to
    /// the stray pointer to reach the object's new home.
    pub fn displacement(&self) -> i64 {
        self.final_addr.distance_from(self.initial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displacement() {
        let t = TrapInfo {
            initial: Addr(0x100),
            final_addr: Addr(0x500),
            hops: 1,
            is_store: false,
        };
        assert_eq!(t.displacement(), 0x400);
    }
}
