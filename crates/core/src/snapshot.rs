//! Crash-safe machine snapshots: a versioned, checksummed binary image of
//! the complete simulator state.
//!
//! A snapshot captures *everything* that determines the rest of a run —
//! tagged memory including per-word forwarding bits, the heap allocator,
//! the cache hierarchy with MSHR and bus state, the pipeline and
//! graduation accountant, the speculation queue, all statistics counters,
//! the trace buffer, the paging layer, the fault-injection RNG stream, and
//! the watchdog's sliding hop window — plus an application *cursor*
//! (opaque `u64` words owned by the checkpointing harness in
//! `memfwd_apps`). Restoring a snapshot and running to completion is
//! bit-identical to never having stopped: same outputs, same `RunStats`.
//!
//! The only machine state deliberately **not** captured is the registered
//! supervisor [`crate::trap::FaultHandler`] (an arbitrary closure cannot be
//! serialized); a restored machine has no handler until the application
//! re-registers one.
//!
//! # Container format
//!
//! ```text
//! [ 0..  8)  magic  b"MFWDSNAP"
//! [ 8.. 12)  format version, u32 little-endian
//! [12.. 20)  payload length, u64 little-endian
//! [20.. 28)  FNV-1a-64 checksum of the payload
//! [28..   )  payload
//! ```
//!
//! The payload begins with a fingerprint of the full `Debug` rendering of
//! the simulation configuration, so a snapshot can never be silently
//! restored under different machine parameters. Every decoding path is
//! *total*: truncated, bit-flipped, version-skewed, or fingerprint-mismatched
//! images are rejected with a typed [`SnapshotError`] — never a panic and
//! never a silently divergent machine.

use crate::config::SimConfig;
use crate::inject::Injector;
use crate::machine::Machine;
use crate::paging::PageCache;
use crate::smp::{Core, SmpConfig, SmpMachine};
use crate::stats::FwdStats;
use crate::trace::Trace;
use crate::trap::TrapInfo;
use memfwd_cache::{CacheLevel, Hierarchy};
use memfwd_cpu::{Pipeline, SpecQueue};
use memfwd_tagmem::{Addr, Heap, SnapCodecError, SnapDecoder, SnapEncoder, TaggedMemory};
use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::path::Path;

/// Leading magic of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"MFWDSNAP";

/// Current snapshot format version. Bumped on any layout change; old
/// versions are rejected with [`SnapshotError::BadVersion`], never
/// misinterpreted. Version 2 added the epoch-engine counters
/// ([`crate::EpochStats`]) to the machine payload.
pub const SNAPSHOT_VERSION: u32 = 2;

const HEADER_BYTES: usize = 28;

/// Why a snapshot was rejected. Carried inside
/// [`crate::MachineFault::CorruptSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SnapshotError {
    /// The image ends before the header or the declared payload does.
    Truncated,
    /// The image does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The image was written by a different format version.
    BadVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The payload checksum does not match the header (bit rot or a torn
    /// write).
    BadChecksum,
    /// The payload is internally inconsistent (an invalid tag, length, or
    /// value).
    BadValue,
    /// The snapshot was written under a different simulation configuration.
    ConfigMismatch,
    /// A filesystem operation failed while reading or writing the image.
    Io(std::io::ErrorKind),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a memfwd snapshot (bad magic)"),
            SnapshotError::BadVersion { found } => {
                write!(
                    f,
                    "snapshot format version {found} (this build reads {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::BadChecksum => write!(f, "snapshot checksum mismatch"),
            SnapshotError::BadValue => write!(f, "snapshot payload is inconsistent"),
            SnapshotError::ConfigMismatch => {
                write!(f, "snapshot was written under a different configuration")
            }
            SnapshotError::Io(kind) => write!(f, "snapshot I/O error: {kind}"),
        }
    }
}

impl Error for SnapshotError {}

impl From<SnapCodecError> for SnapshotError {
    fn from(e: SnapCodecError) -> Self {
        match e {
            SnapCodecError::Truncated => SnapshotError::Truncated,
            SnapCodecError::BadValue => SnapshotError::BadValue,
        }
    }
}

/// FNV-1a 64-bit: small, dependency-free, and plenty for detecting torn
/// writes and bit rot (crash safety, not adversarial integrity).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of a configuration: FNV-1a over its full `Debug` rendering.
/// Any field change — cache geometry, penalties, injection campaign,
/// watchdog bounds — changes the fingerprint and voids old snapshots.
fn fingerprint(rendered: &str) -> u64 {
    fnv1a64(rendered.as_bytes())
}

/// Configuration fingerprint for uniprocessor snapshots. `epoch_threads`
/// is a *host* knob — results are bit-identical at every setting — so it is
/// normalized out: a checkpoint written at `--threads 4` resumes cleanly at
/// `--threads 1` (or vice versa).
fn config_fingerprint(cfg: &SimConfig) -> u64 {
    let mut norm = *cfg;
    norm.epoch_threads = 0;
    fingerprint(&format!("{norm:?}"))
}

/// Wraps a payload in the versioned, checksummed container.
fn seal(payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Validates the container and returns the payload. Check order: length,
/// magic, version (before the checksum, so a version skew is reported as
/// such), declared payload length, checksum.
fn open(bytes: &[u8]) -> Result<&[u8], SnapshotError> {
    if bytes.len() < HEADER_BYTES {
        return Err(SnapshotError::Truncated);
    }
    if bytes[0..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::BadVersion { found: version });
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let payload = &bytes[HEADER_BYTES..];
    if (payload.len() as u64) < len {
        return Err(SnapshotError::Truncated);
    }
    if (payload.len() as u64) > len {
        // Trailing garbage is as suspect as missing bytes.
        return Err(SnapshotError::BadValue);
    }
    let checksum = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
    if fnv1a64(payload) != checksum {
        return Err(SnapshotError::BadChecksum);
    }
    Ok(payload)
}

// ---------------------------------------------------------------------
// Component codecs living in this crate. The statistics codecs live on
// the stats types themselves ([`FwdStats::snapshot_encode`]) so the farm
// crate can reuse them for its worker protocol and campaign journal.
// ---------------------------------------------------------------------

fn encode_machine(enc: &mut SnapEncoder, m: &Machine) {
    m.mem.snapshot_encode(enc);
    m.heap.snapshot_encode(enc);
    m.hier.snapshot_encode(enc);
    m.pipe.snapshot_encode(enc);
    m.spec.snapshot_encode(enc);
    m.stats.snapshot_encode(enc);
    enc.bool(m.traps_enabled);
    enc.seq(m.trap_log.iter(), |e, t| {
        e.addr(t.initial);
        e.addr(t.final_addr);
        e.u32(t.hops);
        e.bool(t.is_store);
    });
    enc.u64(m.last_store_resolve);
    enc.bool(m.pages.is_some());
    if let Some(p) = m.pages.as_ref() {
        p.snapshot_encode(enc);
    }
    enc.seq(m.store_buf.iter(), |e, &d| e.u64(d));
    enc.bool(m.trace.is_some());
    if let Some(t) = m.trace.as_ref() {
        t.snapshot_encode(enc);
    }
    enc.bool(m.injector.is_some());
    if let Some(inj) = m.injector.as_ref() {
        inj.snapshot_encode(enc);
    }
    enc.seq(m.walk_hops_window.iter(), |e, &h| e.u64(h));
    m.epoch_stats.snapshot_encode(enc);
}

fn decode_machine(dec: &mut SnapDecoder<'_>, cfg: SimConfig) -> Result<Machine, SnapshotError> {
    let mem = TaggedMemory::snapshot_decode(dec)?;
    let heap = Heap::snapshot_decode(dec)?;
    let hier = Hierarchy::snapshot_decode(dec, cfg.hierarchy)?;
    let pipe = Pipeline::snapshot_decode(dec, cfg.pipeline)?;
    let spec = SpecQueue::snapshot_decode(dec)?;
    let stats = FwdStats::snapshot_decode(dec)?;
    let traps_enabled = dec.bool()?;
    let n_traps = dec.seq_len(21)?;
    let mut trap_log = Vec::with_capacity(n_traps);
    for _ in 0..n_traps {
        trap_log.push(TrapInfo {
            initial: dec.addr()?,
            final_addr: dec.addr()?,
            hops: dec.u32()?,
            is_store: dec.bool()?,
        });
    }
    let last_store_resolve = dec.u64()?;
    let has_pages = dec.bool()?;
    if has_pages != cfg.paging.is_some() {
        return Err(SnapshotError::ConfigMismatch);
    }
    let pages = match cfg.paging.filter(|_| has_pages) {
        Some(pcfg) => Some(PageCache::snapshot_decode(dec, pcfg)?),
        None => None,
    };
    let n_buf = dec.seq_len(8)?;
    let mut store_buf = VecDeque::with_capacity(n_buf);
    for _ in 0..n_buf {
        store_buf.push_back(dec.u64()?);
    }
    let trace = if dec.bool()? {
        Some(Trace::snapshot_decode(dec)?)
    } else {
        None
    };
    let has_injector = dec.bool()?;
    if has_injector != cfg.fault_injection.is_some() {
        return Err(SnapshotError::ConfigMismatch);
    }
    let injector = match cfg.fault_injection.filter(|_| has_injector) {
        Some(icfg) => Some(Injector::snapshot_decode(dec, icfg)?),
        None => None,
    };
    let n_window = dec.seq_len(8)?;
    let mut walk_hops_window = VecDeque::with_capacity(n_window);
    let mut walk_hops_sum = 0u64;
    for _ in 0..n_window {
        let h = dec.u64()?;
        walk_hops_sum = walk_hops_sum
            .checked_add(h)
            .ok_or(SnapCodecError::BadValue)?;
        walk_hops_window.push_back(h);
    }
    let epoch_stats = crate::stats::EpochStats::snapshot_decode(dec)?;
    let mut m = Machine {
        cfg,
        mem,
        heap,
        hier,
        pipe,
        spec,
        stats,
        traps_enabled,
        trap_log,
        last_store_resolve,
        pages,
        store_buf,
        trace,
        fault_handler: None,
        injector,
        walk_hops_window,
        walk_hops_sum,
        walk_scratch: Vec::new(),
        fast_ok: false,
        ref_cursor: memfwd_tagmem::PageCursor::empty(),
        epoch_stats,
    };
    m.recompute_fast_ok();
    Ok(m)
}

// ---------------------------------------------------------------------
// Public API: uniprocessor machine.
// ---------------------------------------------------------------------

/// Serializes `m` and an opaque application `cursor` into a sealed
/// snapshot image. The registered fault handler, if any, is not captured
/// (see the module documentation).
pub fn save_machine(m: &Machine, cursor: &[u64]) -> Vec<u8> {
    let mut enc = SnapEncoder::new();
    enc.u64(config_fingerprint(&m.cfg));
    enc.u8(0); // flavor: uniprocessor
    encode_machine(&mut enc, m);
    enc.seq(cursor.iter(), |e, &w| e.u64(w));
    seal(enc.into_bytes())
}

/// Restores a machine and its application cursor from a snapshot image.
///
/// The caller supplies the configuration the run is being resumed under;
/// it must fingerprint-match the one the snapshot was written with.
///
/// # Errors
///
/// Any [`SnapshotError`]: the image is rejected wholesale — a partially
/// restored machine is never returned.
pub fn restore_machine(bytes: &[u8], cfg: SimConfig) -> Result<(Machine, Vec<u64>), SnapshotError> {
    let payload = open(bytes)?;
    let mut dec = SnapDecoder::new(payload);
    if dec.u64()? != config_fingerprint(&cfg) {
        return Err(SnapshotError::ConfigMismatch);
    }
    if dec.u8()? != 0 {
        return Err(SnapshotError::BadValue);
    }
    let m = decode_machine(&mut dec, cfg)?;
    let n = dec.seq_len(8)?;
    let mut cursor = Vec::with_capacity(n);
    for _ in 0..n {
        cursor.push(dec.u64()?);
    }
    if !dec.is_exhausted() {
        return Err(SnapshotError::BadValue);
    }
    Ok((m, cursor))
}

/// Validates a uniprocessor snapshot's container and configuration
/// fingerprint *without* decoding the machine payload.
///
/// This is the cheap up-front check a resuming driver runs before
/// committing to a restore: a config-skewed or corrupt image is rejected
/// in microseconds instead of being discovered deep inside the run.
/// Passing this check does not guarantee the payload decodes — it
/// guarantees the image is a well-formed, checksummed snapshot written
/// under exactly this configuration.
///
/// # Errors
///
/// Any container-level [`SnapshotError`], [`SnapshotError::ConfigMismatch`]
/// if the fingerprint differs, or [`SnapshotError::BadValue`] if the image
/// is not a uniprocessor snapshot.
pub fn check_snapshot_config(bytes: &[u8], cfg: &SimConfig) -> Result<(), SnapshotError> {
    let payload = open(bytes)?;
    let mut dec = SnapDecoder::new(payload);
    if dec.u64()? != config_fingerprint(cfg) {
        return Err(SnapshotError::ConfigMismatch);
    }
    if dec.u8()? != 0 {
        return Err(SnapshotError::BadValue);
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Public API: SMP machine.
// ---------------------------------------------------------------------

fn smp_fingerprint(cfg: &SmpConfig, sim: &SimConfig) -> u64 {
    // `epoch_threads` is normalized out exactly as for uniprocessor images.
    let mut sim = *sim;
    sim.epoch_threads = 0;
    fingerprint(&format!("{cfg:?}|{sim:?}"))
}

/// Serializes an [`SmpMachine`] and an opaque application `cursor` into a
/// sealed snapshot image.
pub fn save_smp(m: &SmpMachine, cursor: &[u64]) -> Vec<u8> {
    let mut enc = SnapEncoder::new();
    enc.u64(smp_fingerprint(&m.cfg, &m.sim));
    enc.u8(1); // flavor: SMP
    m.mem.snapshot_encode(&mut enc);
    m.heap.snapshot_encode(&mut enc);
    enc.seq(m.cores.iter(), |e, c| {
        c.l1.snapshot_encode(e);
        e.u64(c.now);
        e.u64(c.stats.loads);
        e.u64(c.stats.stores);
        e.u64(c.stats.hits);
        e.u64(c.stats.misses);
        e.u64(c.stats.coherence_misses);
        e.u64(c.stats.false_sharing_misses);
        e.u64(c.stats.forwarded);
        e.u64(c.stats.sb_forwards);
        e.u64(c.stats.sb_drains);
        e.u64(c.stats.fences);
        e.seq(c.sb.iter(), |e, w| match *w {
            crate::smp::SbWrite::Store { addr, size, value } => {
                e.u8(0);
                e.u64(addr.0);
                e.u64(size);
                e.u64(value);
            }
            crate::smp::SbWrite::Copy { addr, value } => {
                e.u8(1);
                e.u64(addr.0);
                e.u64(value);
            }
            crate::smp::SbWrite::Install { word, fwd_to } => {
                e.u8(2);
                e.u64(word.0);
                e.u64(fwd_to.0);
            }
        });
    });
    let mut locks: Vec<(u64, usize)> = m.lock_holders.iter().map(|(&w, &c)| (w, c)).collect();
    locks.sort_unstable();
    enc.seq(locks.into_iter(), |e, (word, holder)| {
        e.u64(word);
        e.usize(holder);
    });
    let mut line_nos: Vec<u64> = m.lines.keys().copied().collect();
    line_nos.sort_unstable();
    enc.usize(line_nos.len());
    for line in line_nos {
        let info = &m.lines[&line];
        enc.u64(line);
        enc.u32(info.sharers);
        enc.bool(info.owner.is_some());
        enc.usize(info.owner.unwrap_or(0));
        let mut touched: Vec<(usize, u64)> = info.touched.iter().map(|(&c, &w)| (c, w)).collect();
        touched.sort_unstable();
        enc.seq(touched.into_iter(), |e, (core, mask)| {
            e.usize(core);
            e.u64(mask);
        });
        enc.u64(info.written);
    }
    enc.bool(m.injector.is_some());
    if let Some(inj) = m.injector.as_ref() {
        inj.snapshot_encode(&mut enc);
    }
    enc.u64(m.injected_faults);
    enc.u64(m.fault_repairs);
    enc.seq(cursor.iter(), |e, &w| e.u64(w));
    seal(enc.into_bytes())
}

/// Restores an [`SmpMachine`] and its application cursor from a snapshot
/// image written by [`save_smp`].
///
/// # Errors
///
/// Any [`SnapshotError`]; the image is rejected wholesale.
pub fn restore_smp(
    bytes: &[u8],
    cfg: SmpConfig,
    sim: SimConfig,
) -> Result<(SmpMachine, Vec<u64>), SnapshotError> {
    let payload = open(bytes)?;
    let mut dec = SnapDecoder::new(payload);
    if dec.u64()? != smp_fingerprint(&cfg, &sim) {
        return Err(SnapshotError::ConfigMismatch);
    }
    if dec.u8()? != 1 {
        return Err(SnapshotError::BadValue);
    }
    let mem = TaggedMemory::snapshot_decode(&mut dec)?;
    let heap = Heap::snapshot_decode(&mut dec)?;
    let n_cores = dec.seq_len(64)?;
    if n_cores != cfg.cores {
        return Err(SnapshotError::ConfigMismatch);
    }
    let mut cores = Vec::with_capacity(n_cores);
    for _ in 0..n_cores {
        let l1 = CacheLevel::snapshot_decode(&mut dec)?;
        let now = dec.u64()?;
        let stats = crate::smp::CoreStats {
            loads: dec.u64()?,
            stores: dec.u64()?,
            hits: dec.u64()?,
            misses: dec.u64()?,
            coherence_misses: dec.u64()?,
            false_sharing_misses: dec.u64()?,
            forwarded: dec.u64()?,
            sb_forwards: dec.u64()?,
            sb_drains: dec.u64()?,
            fences: dec.u64()?,
        };
        let n_sb = dec.seq_len(16)?;
        let mut sb = std::collections::VecDeque::with_capacity(n_sb);
        for _ in 0..n_sb {
            sb.push_back(match dec.u8()? {
                0 => crate::smp::SbWrite::Store {
                    addr: Addr(dec.u64()?),
                    size: dec.u64()?,
                    value: dec.u64()?,
                },
                1 => crate::smp::SbWrite::Copy {
                    addr: Addr(dec.u64()?),
                    value: dec.u64()?,
                },
                2 => crate::smp::SbWrite::Install {
                    word: Addr(dec.u64()?),
                    fwd_to: Addr(dec.u64()?),
                },
                _ => return Err(SnapshotError::BadValue),
            });
        }
        cores.push(Core { l1, now, stats, sb });
    }
    let n_locks = dec.seq_len(20)?;
    let mut lock_holders = HashMap::with_capacity(n_locks);
    let mut last_lock = None;
    for _ in 0..n_locks {
        let word = dec.u64()?;
        if last_lock.is_some_and(|prev| word <= prev) {
            return Err(SnapshotError::BadValue);
        }
        last_lock = Some(word);
        let holder = dec.usize()?;
        if holder >= n_cores {
            return Err(SnapshotError::BadValue);
        }
        lock_holders.insert(word, holder);
    }
    let n_lines = dec.seq_len(30)?;
    let mut lines = HashMap::with_capacity(n_lines);
    let mut last_line = None;
    for _ in 0..n_lines {
        let line = dec.u64()?;
        if last_line.is_some_and(|prev| line <= prev) {
            return Err(SnapshotError::BadValue);
        }
        last_line = Some(line);
        let sharers = dec.u32()?;
        let has_owner = dec.bool()?;
        let owner_raw = dec.usize()?;
        let owner = if has_owner {
            if owner_raw >= n_cores {
                return Err(SnapshotError::BadValue);
            }
            Some(owner_raw)
        } else {
            None
        };
        let n_touched = dec.seq_len(16)?;
        let mut touched = HashMap::with_capacity(n_touched);
        for _ in 0..n_touched {
            let core = dec.usize()?;
            if core >= n_cores {
                return Err(SnapshotError::BadValue);
            }
            let mask = dec.u64()?;
            if touched.insert(core, mask).is_some() {
                return Err(SnapshotError::BadValue);
            }
        }
        let written = dec.u64()?;
        lines.insert(
            line,
            crate::smp::LineInfo {
                sharers,
                owner,
                touched,
                written,
            },
        );
    }
    let has_injector = dec.bool()?;
    if has_injector != sim.fault_injection.is_some() {
        return Err(SnapshotError::ConfigMismatch);
    }
    let injector = match sim.fault_injection.filter(|_| has_injector) {
        Some(icfg) => Some(Injector::snapshot_decode(&mut dec, icfg)?),
        None => None,
    };
    let injected_faults = dec.u64()?;
    let fault_repairs = dec.u64()?;
    let n = dec.seq_len(8)?;
    let mut cursor = Vec::with_capacity(n);
    for _ in 0..n {
        cursor.push(dec.u64()?);
    }
    if !dec.is_exhausted() {
        return Err(SnapshotError::BadValue);
    }
    Ok((
        SmpMachine {
            cfg,
            sim,
            mem,
            heap,
            cores,
            lines,
            lock_holders,
            injector,
            injected_faults,
            fault_repairs,
            // Like the uniprocessor fault handler, the observational event
            // trace is transient: a restored machine starts untraced.
            events: None,
        },
        cursor,
    ))
}

// ---------------------------------------------------------------------
// Atomic file I/O.
// ---------------------------------------------------------------------

/// Writes a snapshot image to `path` atomically: the bytes land in a
/// sibling `.tmp` file first and are renamed into place, so a crash
/// mid-write can never leave a half-written image under the final name.
///
/// # Errors
///
/// [`SnapshotError::Io`] with the underlying error kind.
pub fn write_snapshot_file(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, bytes).map_err(|e| SnapshotError::Io(e.kind()))?;
    std::fs::rename(&tmp, path).map_err(|e| SnapshotError::Io(e.kind()))
}

/// Reads a snapshot image from `path`.
///
/// # Errors
///
/// [`SnapshotError::Io`] with the underlying error kind.
pub fn read_snapshot_file(path: &Path) -> Result<Vec<u8>, SnapshotError> {
    std::fs::read(path).map_err(|e| SnapshotError::Io(e.kind()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use memfwd_cpu::Token;
    use memfwd_tagmem::Addr;

    /// A machine with non-trivial state in every subsystem.
    fn busy_machine() -> Machine {
        let mut m = Machine::new(SimConfig::default());
        let a = m.malloc(256);
        let b = m.malloc(256);
        m.store(a, 8, 0xDEAD);
        m.store(b + 8, 4, 7);
        m.unforwarded_write(a + 16, (b + 16).0, true);
        m.set_traps_enabled(true);
        m.load(a + 16, 8); // forwarded: records a trap
        m.enable_trace(64);
        let (_, t) = m.load_word_dep(a, Token::ready());
        m.store_dep(b, 8, 3, t);
        m
    }

    #[test]
    fn machine_roundtrip_is_byte_stable() {
        let m = busy_machine();
        let cursor = vec![1, 2, 3, 0xFFFF_FFFF_FFFF_FFFF];
        let img = save_machine(&m, &cursor);
        let (m2, cursor2) = restore_machine(&img, *m.config()).expect("restore");
        assert_eq!(cursor2, cursor);
        // Byte-stability: re-saving the restored machine reproduces the
        // identical image, so every field round-tripped exactly.
        assert_eq!(save_machine(&m2, &cursor2), img);
    }

    #[test]
    fn restored_machine_continues_identically() {
        let make = || {
            let mut m = Machine::new(SimConfig::default());
            let a = m.malloc(128);
            for i in 0..8 {
                m.store(a + i * 8, 8, i);
            }
            (m, a)
        };
        let (m_cont, a) = make();
        let (m_stop, _) = make();
        let img = save_machine(&m_stop, &[a.0]);
        drop(m_stop);
        let (mut m_res, cursor) = restore_machine(&img, SimConfig::default()).expect("restore");
        let mut m_cont = m_cont;
        let a2 = Addr(cursor[0]);
        assert_eq!(a2, a);
        for i in 0..8 {
            assert_eq!(m_cont.load(a + i * 8, 8), m_res.load(a2 + i * 8, 8));
        }
        assert_eq!(m_cont.finish(), m_res.finish(), "identical RunStats");
    }

    #[test]
    fn truncation_is_typed_at_every_length() {
        let img = save_machine(&busy_machine(), &[42]);
        for len in [0, 7, 11, 19, 27, HEADER_BYTES, img.len() / 2, img.len() - 1] {
            let r = restore_machine(&img[..len], SimConfig::default());
            assert!(
                matches!(r, Err(SnapshotError::Truncated)),
                "len {len}: {r:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected_or_roundtrips() {
        // Flip one bit at a selection of offsets across the image; the
        // restore must fail with a typed error (header and checksum cover
        // everything) — never panic, never silently succeed.
        let m = busy_machine();
        let img = save_machine(&m, &[7]);
        for byte in (0..img.len()).step_by(97).chain([8, 20, img.len() - 1]) {
            let mut bad = img.clone();
            bad[byte] ^= 0x10;
            let r = restore_machine(&bad, SimConfig::default());
            assert!(r.is_err(), "flip at byte {byte} must be rejected");
        }
    }

    #[test]
    fn version_skew_is_reported_before_checksum() {
        let mut img = save_machine(&busy_machine(), &[]);
        img[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            restore_machine(&img, SimConfig::default()).err(),
            Some(SnapshotError::BadVersion { found: 99 })
        );
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut img = save_machine(&busy_machine(), &[]);
        img[0] = b'X';
        assert_eq!(
            restore_machine(&img, SimConfig::default()).err(),
            Some(SnapshotError::BadMagic)
        );
    }

    #[test]
    fn epoch_threads_is_fingerprint_neutral() {
        // A checkpoint is a host artifact: the worker count at write time
        // must not pin the worker count at resume time.
        let img = save_machine(&busy_machine(), &[5]);
        for threads in [0, 1, 4] {
            let cfg = SimConfig::default().with_epoch_threads(threads);
            check_snapshot_config(&img, &cfg).expect("threads-skewed resume passes");
            let (m2, cursor) = restore_machine(&img, cfg).expect("restore");
            assert_eq!(cursor, vec![5]);
            assert_eq!(m2.config().epoch_threads, threads);
        }
    }

    #[test]
    fn config_mismatch_is_typed() {
        let img = save_machine(&busy_machine(), &[]);
        let other = SimConfig::default().with_line_bytes(128);
        assert_eq!(
            restore_machine(&img, other).err(),
            Some(SnapshotError::ConfigMismatch)
        );
    }

    #[test]
    fn check_snapshot_config_agrees_with_restore() {
        let img = save_machine(&busy_machine(), &[]);
        check_snapshot_config(&img, &SimConfig::default()).expect("matching config passes");
        let other = SimConfig::default().with_line_bytes(128);
        assert_eq!(
            check_snapshot_config(&img, &other),
            Err(SnapshotError::ConfigMismatch)
        );
        assert_eq!(
            check_snapshot_config(&img[..10], &SimConfig::default()),
            Err(SnapshotError::Truncated)
        );
        // An SMP image is well-formed but not a uniprocessor snapshot.
        let smp = save_smp(
            &SmpMachine::new(SmpConfig::default(), SimConfig::default()),
            &[],
        );
        assert_eq!(
            check_snapshot_config(&smp, &SimConfig::default()),
            Err(SnapshotError::ConfigMismatch),
        );
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut img = save_machine(&busy_machine(), &[]);
        img.push(0);
        assert_eq!(
            restore_machine(&img, SimConfig::default()).err(),
            Some(SnapshotError::BadValue)
        );
    }

    #[test]
    fn injector_stream_survives_roundtrip() {
        let cfg = SimConfig::default().with_fault_injection(crate::inject::InjectConfig {
            fbit_flip_ppm: 300_000,
            recover: true,
            ..Default::default()
        });
        let mut m = Machine::new(cfg);
        let a = m.malloc(256);
        for i in 0..16 {
            m.store(a + (i % 8) * 8, 8, i);
        }
        let img = save_machine(&m, &[]);
        let (mut m2, _) = restore_machine(&img, cfg).expect("restore");
        // Continue both machines: the injection stream must stay in step.
        for i in 0..16 {
            m.store(a + (i % 8) * 8, 8, i);
            m2.store(a + (i % 8) * 8, 8, i);
        }
        assert_eq!(m.finish(), m2.finish());
    }

    #[test]
    fn smp_roundtrip_is_byte_stable() {
        let cfg = SmpConfig::default();
        let sim = SimConfig::default();
        let mut m = SmpMachine::new(cfg, sim);
        let a = m.malloc(256);
        m.store(0, a, 8, 1);
        m.store(1, a + 8, 8, 2);
        let b = m.malloc(8);
        m.relocate(0, a, b, 1);
        m.barrier();
        let img = save_smp(&m, &[9, 9]);
        let (m2, cursor) = restore_smp(&img, cfg, sim).expect("restore");
        assert_eq!(cursor, vec![9, 9]);
        assert_eq!(save_smp(&m2, &cursor), img);
    }

    #[test]
    fn smp_tso_roundtrip_preserves_pending_buffers_and_locks() {
        let cfg = SmpConfig::default();
        let sim = SimConfig::default().with_memory_model(crate::config::MemoryModel::Tso);
        let mut m = SmpMachine::new(cfg, sim);
        let a = m.malloc(256);
        m.lock(0, a + 128); // held lock survives the image (drains on entry)
        m.store(0, a, 8, 1); // pending demand store
        let b = m.malloc(8);
        m.relocate(1, a + 64, b, 1); // pending copy + fbit install
        let img = save_smp(&m, &[3]);
        let (mut m2, cursor) = restore_smp(&img, cfg, sim).expect("restore");
        assert_eq!(cursor, vec![3]);
        assert_eq!(save_smp(&m2, &cursor), img, "byte-stable round trip");
        assert_eq!(m2.store_buffer_depth(0), 1);
        assert_eq!(m2.store_buffer_depth(1), 2);
        // Draining the restored machine publishes exactly the pending work.
        m2.barrier();
        assert_eq!(m2.load(1, a, 8), 1);
        assert_eq!(m2.load(0, a + 64, 8), m2.load(0, b, 8));
        m2.unlock(0, a + 128);
    }

    #[test]
    fn smp_restore_rejects_sb_image_under_other_model() {
        // The fingerprint covers `memory_model`, so a TSO image (with
        // pending buffer entries) cannot be restored into an SC machine.
        let cfg = SmpConfig::default();
        let tso = SimConfig::default().with_memory_model(crate::config::MemoryModel::Tso);
        let mut m = SmpMachine::new(cfg, tso);
        let a = m.malloc(8);
        m.store(0, a, 8, 1);
        let img = save_smp(&m, &[]);
        assert_eq!(
            restore_smp(&img, cfg, SimConfig::default()).err(),
            Some(SnapshotError::ConfigMismatch)
        );
    }

    #[test]
    fn smp_restore_rejects_wrong_core_count() {
        let sim = SimConfig::default();
        let m = SmpMachine::new(SmpConfig::default(), sim);
        let img = save_smp(&m, &[]);
        let other = SmpConfig {
            cores: 2,
            ..SmpConfig::default()
        };
        assert_eq!(
            restore_smp(&img, other, sim).err(),
            Some(SnapshotError::ConfigMismatch)
        );
    }

    #[test]
    fn atomic_file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("memfwd-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("ck.snap");
        let img = save_machine(&busy_machine(), &[1]);
        write_snapshot_file(&path, &img).expect("write");
        assert_eq!(read_snapshot_file(&path).expect("read"), img);
        assert!(restore_machine(&read_snapshot_file(&path).unwrap(), SimConfig::default()).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_typed_io_error() {
        let r = read_snapshot_file(Path::new("/nonexistent/memfwd.snap"));
        assert!(matches!(r, Err(SnapshotError::Io(_))));
    }
}
