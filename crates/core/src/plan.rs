//! Relocation plans: a capturable record of every relocation a run
//! performs, plus the machine parameters a static verifier needs to judge
//! it.
//!
//! The paper's premise is that relocation safety cannot in general be
//! proven statically — hardware forwarding guarantees it dynamically. A
//! *schedule* of relocations, however, is a finite object the moment it is
//! written down, and for a known schedule the forwarding-chain graph can be
//! analyzed before a single cycle is simulated. This module provides the
//! raw material: a [`RelocPlan`] value and a thread-local capture hook that
//! [`crate::try_relocate`] feeds, so any run (including the eight stock
//! applications) can dump the exact relocation schedule it executed. The
//! verifier itself lives in the `memfwd-analyze` crate.
//!
//! Capture is strictly host-side bookkeeping: no simulated cycles, cache
//! traffic or statistics change whether it is on or off, so a captured run
//! is bit-identical to an uncaptured one.

use memfwd_tagmem::Addr;
use std::cell::RefCell;

/// One `relocate(src, tgt, n_words)` call, in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RelocStep {
    /// First source word (word-aligned in a well-formed step).
    pub src: Addr,
    /// First target word (word-aligned in a well-formed step).
    pub tgt: Addr,
    /// Number of words moved.
    pub words: u64,
}

/// A relocation schedule together with the machine parameters that decide
/// its safety.
///
/// `pre` lists forwarding edges assumed to exist *before* the first step
/// runs (word → forwarding address, i.e. words whose forwarding bit is
/// already set). Plans captured from application runs have an empty `pre`:
/// every forwarding edge an application creates goes through
/// [`crate::relocate`] and is therefore part of `steps`. Synthetic plans —
/// fixtures, fuzzers — may declare arbitrary initial chains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelocPlan {
    /// The relocation steps, in execution order.
    pub steps: Vec<RelocStep>,
    /// Forwarding edges present before the first step (word, target).
    pub pre: Vec<(Addr, Addr)>,
    /// Base of the simulated heap (relocation targets must stay inside).
    pub heap_base: Addr,
    /// Capacity of the simulated heap in bytes.
    pub heap_capacity: u64,
    /// The run's hard forwarding-hop budget, if one is declared
    /// ([`crate::SimConfig::hard_hop_budget`]): an access walking more than
    /// this many hops faults even on an acyclic chain.
    pub hard_hop_budget: Option<u32>,
}

impl RelocPlan {
    /// An empty plan over the given heap, with no hop budget.
    pub fn new(heap_base: Addr, heap_capacity: u64) -> RelocPlan {
        RelocPlan {
            steps: Vec::new(),
            pre: Vec::new(),
            heap_base,
            heap_capacity,
            hard_hop_budget: None,
        }
    }
}

thread_local! {
    /// The capture slot: `Some` while this thread is recording relocation
    /// steps. Thread-local so parallel sweep workers never interleave
    /// their schedules.
    static CAPTURE: RefCell<Option<Vec<RelocStep>>> = const { RefCell::new(None) };
}

/// Starts recording relocation steps on this thread, discarding any
/// previously captured (and not yet taken) steps.
pub fn begin_plan_capture() {
    CAPTURE.with(|c| *c.borrow_mut() = Some(Vec::new()));
}

/// Stops recording and returns the steps captured on this thread since
/// [`begin_plan_capture`], or `None` if capture was never started.
pub fn take_captured_steps() -> Option<Vec<RelocStep>> {
    CAPTURE.with(|c| c.borrow_mut().take())
}

/// Records one relocation step if this thread is capturing. Called by
/// [`crate::try_relocate`] after its alignment checks.
pub(crate) fn note_reloc_step(src: Addr, tgt: Addr, words: u64) {
    CAPTURE.with(|c| {
        if let Some(steps) = c.borrow_mut().as_mut() {
            steps.push(RelocStep { src, tgt, words });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::machine::Machine;
    use crate::reloc::relocate;

    #[test]
    fn capture_records_steps_in_order() {
        begin_plan_capture();
        let mut m = Machine::new(SimConfig::default());
        let a = m.malloc(16);
        let b = m.malloc(16);
        let c = m.malloc(8);
        let d = m.malloc(8);
        relocate(&mut m, a, b, 2);
        relocate(&mut m, c, d, 1);
        let steps = take_captured_steps().expect("capture was started");
        assert_eq!(
            steps,
            vec![
                RelocStep {
                    src: a,
                    tgt: b,
                    words: 2
                },
                RelocStep {
                    src: c,
                    tgt: d,
                    words: 1
                },
            ]
        );
        assert_eq!(take_captured_steps(), None, "taking clears the slot");
    }

    #[test]
    fn capture_off_records_nothing() {
        let _ = take_captured_steps();
        let mut m = Machine::new(SimConfig::default());
        let a = m.malloc(8);
        let b = m.malloc(8);
        relocate(&mut m, a, b, 1);
        assert_eq!(take_captured_steps(), None);
    }

    #[test]
    fn capture_does_not_perturb_the_simulation() {
        let run = || {
            let mut m = Machine::new(SimConfig::default());
            let a = m.malloc(32);
            let b = m.malloc(32);
            for i in 0..4 {
                m.store_word(a.add_words(i), i);
            }
            relocate(&mut m, a, b, 4);
            for i in 0..4 {
                assert_eq!(m.load_word(a.add_words(i)), i);
            }
            m.finish()
        };
        let plain = run();
        begin_plan_capture();
        let captured = run();
        assert_eq!(take_captured_steps().map(|s| s.len()), Some(1));
        assert_eq!(plain, captured, "capture must be bit-identical");
    }
}
