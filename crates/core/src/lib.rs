//! **Memory forwarding**: safe fine-grained data relocation for cache
//! locality — a reproduction of Luk & Mowry, *Memory Forwarding: Enabling
//! Aggressive Layout Optimizations by Guaranteeing the Safety of Data
//! Relocation* (ISCA 1999).
//!
//! The crate combines the tagged memory (`memfwd-tagmem`), cache hierarchy
//! (`memfwd-cache`) and out-of-order pipeline (`memfwd-cpu`) substrates
//! into an execution-driven [`Machine`], and layers the paper's relocation
//! library on top:
//!
//! - [`relocate`] — the `Relocate()` primitive of Fig. 4(a);
//! - [`list_linearize`] — `ListLinearize()` of Fig. 4(b);
//! - [`subtree_cluster`] — subtree clustering (Fig. 9, used for BH);
//! - [`merge_tables`] / [`copy_region`] / [`color_relocate`] — packing,
//!   copying and coloring optimizations (§2.2, §5.3);
//! - [`ptr_eq`] / [`final_address`] — final-address pointer comparison
//!   (§2.1);
//! - user-level traps on forwarded references ([`TrapInfo`], §3.2).
//!
//! # Example: relocation is always safe
//!
//! ```
//! use memfwd::{relocate, Machine, SimConfig};
//!
//! let mut m = Machine::new(SimConfig::default());
//! let old = m.malloc(16);
//! m.store(old, 8, 42);
//! let stray_pointer = old; // some alias the compiler cannot see
//!
//! let new = m.malloc(16);
//! relocate(&mut m, old, new, 2);
//!
//! // The stray pointer still observes the object, via forwarding:
//! assert_eq!(m.load(stray_pointer, 8), 42);
//! let stats = m.finish();
//! assert_eq!(stats.fwd.forwarded_loads, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code reports failures as typed `MachineFault`s (or records one
// before panicking); bare `unwrap()` stays confined to `#[cfg(test)]`.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod batch;
mod cluster;
mod config;
mod epoch;
pub mod fault;
pub mod inject;
mod inspect;
mod linearize;
mod machine;
mod packing;
mod paging;
pub mod plan;
mod ptrcmp;
mod reloc;
mod replay;
mod smp;
pub mod snapshot;
mod stats;
mod trace;
mod trap;

pub use batch::{BatchDep, BatchOp, BatchOut, RefBatch, BATCH_CAPACITY};
pub use cluster::{subtree_cluster, TreeDesc};
pub use config::{MemoryModel, SimConfig, WatchdogConfig};
pub use epoch::Demand;
pub use fault::{record_last_fault, take_last_fault, MachineFault};
pub use inject::{Corruption, InjectConfig, InjectKind, Injector};
pub use inspect::{dump_chain, heap_summary, line_map};
pub use linearize::{list_linearize, list_walk, LinearizeOutcome, ListDesc};
pub use machine::Machine;
pub use packing::{color_relocate, copy_region, merge_tables, MergedTables};
pub use paging::PagingConfig;
pub use plan::{begin_plan_capture, take_captured_steps, RelocPlan, RelocStep};
pub use ptrcmp::{final_address, ptr_eq};
pub use reloc::{relocate, relocate_adjacent, try_relocate};
pub use replay::{replay_trace, try_replay_trace};
pub use smp::{CoreStats, SmpConfig, SmpEvent, SmpMachine};
pub use snapshot::{
    check_snapshot_config, read_snapshot_file, restore_machine, restore_smp, save_machine,
    save_smp, write_snapshot_file, SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use stats::{EpochStats, FwdStats, RunStats, HOPS_BUCKETS};
pub use trace::{forwarding_sources, hot_miss_lines, TraceKind, TraceRecord};
pub use trap::{FaultHandler, TrapInfo, TrapOutcome, MAX_FAULT_RETRIES};

// Re-export the vocabulary types users need alongside the machine.
pub use memfwd_cache::{CacheStats, HierarchyConfig};
pub use memfwd_cpu::{PipelineConfig, SlotCounts, Token};
pub use memfwd_tagmem::{Addr, Pool, WORD_BYTES};
