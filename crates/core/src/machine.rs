//! The simulated machine: tagged memory + cache hierarchy + out-of-order
//! pipeline, with memory forwarding wired into every demand reference.

use crate::config::SimConfig;
use crate::fault::{record_last_fault, MachineFault};
use crate::inject::{Corruption, InjectKind, Injector};
use crate::paging::PageCache;
use crate::stats::{EpochStats, FwdStats, RunStats, HOPS_BUCKETS};
use crate::trace::{Trace, TraceKind, TraceRecord};
use crate::trap::{FaultHandler, TrapInfo, TrapOutcome, MAX_FAULT_RETRIES};
use memfwd_cache::{AccessKind, Hierarchy};
use memfwd_cpu::{OpClass, Pipeline, SpecQueue, Token};
use memfwd_tagmem::{validate_access, Addr, Heap, PageCursor, Pool, TaggedMemory, WORD_BYTES};
use std::collections::HashSet;

/// The execution-driven simulator.
///
/// Applications run *functionally* in program order by calling the machine's
/// load/store/compute operations; the machine derives cycle-level timing
/// from an out-of-order pipeline model, a two-level cache hierarchy, and
/// the memory-forwarding mechanism. Pointer-chasing code threads [`Token`]s
/// through dependent loads so that serialization is modelled faithfully.
///
/// # Example
///
/// ```
/// use memfwd::{Machine, SimConfig};
///
/// let mut m = Machine::new(SimConfig::default());
/// let a = m.malloc(16);
/// m.store(a, 8, 7);
/// assert_eq!(m.load(a, 8), 7);
/// let stats = m.finish();
/// assert!(stats.cycles() > 0);
/// ```
pub struct Machine {
    pub(crate) cfg: SimConfig,
    pub(crate) mem: TaggedMemory,
    pub(crate) heap: Heap,
    pub(crate) hier: Hierarchy,
    pub(crate) pipe: Pipeline,
    pub(crate) spec: SpecQueue,
    pub(crate) stats: FwdStats,
    pub(crate) traps_enabled: bool,
    pub(crate) trap_log: Vec<TrapInfo>,
    pub(crate) last_store_resolve: u64,
    pub(crate) pages: Option<PageCache>,
    pub(crate) store_buf: std::collections::VecDeque<u64>,
    pub(crate) trace: Option<Trace>,
    pub(crate) fault_handler: Option<FaultHandler>,
    pub(crate) injector: Option<Injector>,
    /// Sliding window of forwarding-hop counts of the most recent demand
    /// references, for the watchdog's walk-storm check.
    pub(crate) walk_hops_window: std::collections::VecDeque<u64>,
    pub(crate) walk_hops_sum: u64,
    /// Reusable scratch for the chain walk's accurate cycle check, so even
    /// walks that trip the hop limit allocate nothing in steady state.
    pub(crate) walk_scratch: Vec<Addr>,
    /// True when no observer (injector, pager, tracer, traps, handler,
    /// store buffer, watchdog, `--scalar`) is attached, so demand
    /// references may take the streamlined unforwarded fast path.
    /// Recomputed by [`Machine::recompute_fast_ok`] at every toggle site.
    pub(crate) fast_ok: bool,
    /// Page-run translation cache for the fast path: consecutive references
    /// to one page pay a single page-table lookup.
    pub(crate) ref_cursor: PageCursor,
    /// Accounting for the epoch-parallel engine ([`crate::epoch`]).
    pub(crate) epoch_stats: EpochStats,
}

/// Outcome of a timed forwarding-chain walk.
struct Walk {
    /// Where the chain ended.
    final_addr: Addr,
    /// Simulated time after the walk.
    t: u64,
    /// Hops taken (0 = unforwarded).
    hops: u32,
    /// Whether any hop missed L1.
    l1_miss: bool,
    /// The data word at the final address — the walk's last probe already
    /// read it, so loads need no second page lookup.
    final_word: u64,
}

impl Machine {
    /// Builds a machine from a configuration.
    pub fn new(cfg: SimConfig) -> Machine {
        let mut m = Machine {
            mem: TaggedMemory::new(),
            heap: Heap::with_policy(cfg.heap_base, cfg.heap_capacity, cfg.alloc_policy),
            hier: Hierarchy::new(cfg.hierarchy),
            pipe: Pipeline::new(cfg.pipeline),
            spec: SpecQueue::new(),
            stats: FwdStats::default(),
            traps_enabled: false,
            trap_log: Vec::new(),
            last_store_resolve: 0,
            pages: cfg.paging.map(PageCache::new),
            store_buf: std::collections::VecDeque::new(),
            trace: None,
            fault_handler: None,
            injector: cfg.fault_injection.map(Injector::new),
            walk_hops_window: std::collections::VecDeque::new(),
            walk_hops_sum: 0,
            walk_scratch: Vec::new(),
            fast_ok: false,
            ref_cursor: PageCursor::empty(),
            epoch_stats: EpochStats::default(),
            cfg,
        };
        m.recompute_fast_ok();
        m
    }

    /// The configuration in force.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Recomputes [`Machine::fast_ok`]. The fast path is legal only when
    /// every optional observer that the general path consults is absent, so
    /// that the streamlined hop-0 body is *exactly* the general body with
    /// its dead branches folded away — the source of the two paths'
    /// bit-identity. Called from every site that attaches or detaches an
    /// observer; a stale `false` only costs speed, never correctness.
    pub(crate) fn recompute_fast_ok(&mut self) {
        self.fast_ok = !self.cfg.scalar_path
            && self.injector.is_none()
            && self.pages.is_none()
            && self.trace.is_none()
            && !self.traps_enabled
            && self.fault_handler.is_none()
            && self.cfg.store_buffer_entries.is_none()
            && self.cfg.watchdog.stall_cycles.is_none()
            && self.cfg.watchdog.walk_hop_budget.is_none();
    }

    /// Whether demand references are currently eligible for the
    /// streamlined unforwarded fast path (diagnostics/tests).
    pub fn fast_path_enabled(&self) -> bool {
        self.fast_ok
    }

    /// Cache line size in bytes — applications use this for clustering and
    /// prefetch-distance decisions, exactly as the paper's hand-applied
    /// optimizations do.
    pub fn line_bytes(&self) -> u64 {
        self.cfg.hierarchy.line_bytes
    }

    /// Current front-end cycle (a lower bound on simulated time).
    pub fn now(&self) -> u64 {
        self.pipe.now()
    }

    /// Read-only view of the tagged memory (for inspection and tests).
    pub fn mem(&self) -> &TaggedMemory {
        &self.mem
    }

    /// Read-only view of the heap allocator.
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Statistics accumulated so far (pipeline totals appear only in
    /// [`Machine::finish`]).
    pub fn fwd_stats(&self) -> &FwdStats {
        &self.stats
    }

    // ------------------------------------------------------------------
    // Demand references with forwarding.
    // ------------------------------------------------------------------

    /// Walks the forwarding chain starting at `addr` with full timing:
    /// each hop reads the old word through the cache (polluting it) and
    /// pays the exception-dispatch penalty. On a genuine cycle or an
    /// exceeded [`SimConfig::hard_hop_budget`], returns the typed fault
    /// plus the time already spent walking (so the caller can retire the
    /// dispatched slot honestly).
    fn try_walk_chain(&mut self, addr: Addr, mut t: u64) -> Result<Walk, (MachineFault, u64)> {
        let mut cur = addr;
        let mut hops = 0u32;
        let mut l1_miss = false;
        let mut counter = 0u32;
        let mut checking = false;
        let final_word;
        loop {
            // One combined page lookup yields the word and its forwarding
            // bit together (the old fbit-probe-then-read hit the page map
            // twice per hop).
            let (fwd, fbit) = self.mem.read_word_tagged(cur);
            if !fbit {
                // The word just read is the data at the final address; hand
                // it back so a whole-word load needs no second page lookup.
                final_word = fwd;
                break;
            }
            if let Some(p) = self.pages.as_mut() {
                t += p.touch(cur);
            }
            let acc = self.hier.access(t, cur.word_base().0, AccessKind::Load);
            l1_miss |= acc.l1_miss();
            t = acc.complete_at + self.cfg.fwd_hop_penalty;
            let next = Addr(fwd) + cur.word_offset();
            hops += 1;
            if let Some(budget) = self.cfg.hard_hop_budget {
                if hops > budget {
                    let fault = MachineFault::HopLimitExceeded {
                        at: cur.word_base(),
                        hops,
                    };
                    return Err((fault, t));
                }
            }
            counter += 1;
            if checking {
                if self.walk_scratch.contains(&next.word_base()) {
                    let fault = MachineFault::ForwardingCycle {
                        at: next.word_base(),
                        hops,
                    };
                    return Err((fault, t));
                }
                self.walk_scratch.push(next.word_base());
            } else if counter > self.cfg.hop_limit {
                // Hop-limit exception: accurate software cycle check,
                // tracked in the machine's reusable scratch buffer.
                t += self.cfg.cycle_check_penalty;
                self.walk_scratch.clear();
                self.walk_scratch.push(cur.word_base());
                self.walk_scratch.push(next.word_base());
                checking = true;
                counter = 0;
            }
            cur = next;
        }
        Ok(Walk {
            final_addr: cur,
            t,
            hops,
            l1_miss,
            final_word,
        })
    }

    /// One attempt at a demand reference: validates, walks the forwarding
    /// chain, performs the access. Raised faults are returned without
    /// handler involvement — [`Machine::try_demand`] owns delivery/retry.
    fn demand_attempt(
        &mut self,
        is_store: bool,
        addr: Addr,
        size: u64,
        val: u64,
        dep: Token,
    ) -> Result<(u64, Token), MachineFault> {
        if addr.is_null() {
            return Err(MachineFault::NullDeref { is_store });
        }
        validate_access(addr, size)?;
        let class = if is_store {
            OpClass::Store
        } else {
            OpClass::Load
        };
        let d = self.pipe.dispatch();
        let mut start = d.max(dep.cycle());
        if !self.cfg.dependence_speculation && !is_store {
            // Conservative machine: a load may not issue until every earlier
            // store's final address is known.
            start = start.max(self.last_store_resolve);
        }

        let walk = if self.cfg.perfect_forwarding {
            match memfwd_tagmem::resolve_with_scratch(
                &self.mem,
                addr,
                memfwd_tagmem::DEFAULT_HOP_LIMIT,
                &mut self.walk_scratch,
            ) {
                Ok(r) => {
                    let (w, _) = self.mem.read_word_tagged(r.final_addr);
                    Ok(Walk {
                        final_addr: r.final_addr,
                        t: start,
                        hops: 0,
                        l1_miss: false,
                        final_word: w,
                    })
                }
                Err(c) => Err((MachineFault::from(c), start)),
            }
        } else {
            self.try_walk_chain(addr, start)
        };
        let Walk {
            final_addr,
            t: t_walk,
            hops,
            l1_miss: walk_miss,
            final_word,
        } = match walk {
            Ok(w) => w,
            Err((fault, t)) => {
                // Retire the dispatched slot as completing when the walk
                // aborted, so the pipeline stays consistent across a fault.
                self.pipe.complete(class, d, t.max(start) + 1, false);
                return Err(fault);
            }
        };
        // A healthy chain preserves the access offset, so the final address
        // is aligned iff the (already validated) initial address was. A
        // corrupted forwarding word can land anywhere: re-validate so the
        // data access below cannot trip on an unchecked address. An
        // unforwarded access kept its already-checked address.
        if final_addr != addr {
            if final_addr.is_null() {
                self.pipe.complete(class, d, t_walk.max(start) + 1, false);
                return Err(MachineFault::NullDeref { is_store });
            }
            if let Err(e) = validate_access(final_addr, size) {
                self.pipe.complete(class, d, t_walk.max(start) + 1, false);
                return Err(MachineFault::from(e));
            }
        }
        let fwd_cycles = t_walk - start;

        // Watchdog: account this walk in the sliding hop window and raise a
        // typed fault when the window's hop volume explodes — a forwarding
        // livelock signature that per-access checks cannot see.
        if let Some(budget) = self.cfg.watchdog.walk_hop_budget {
            let window = self.cfg.watchdog.walk_window.max(1);
            self.walk_hops_window.push_back(u64::from(hops));
            self.walk_hops_sum += u64::from(hops);
            while self.walk_hops_window.len() as u64 > window {
                let oldest = self.walk_hops_window.pop_front().unwrap_or(0);
                self.walk_hops_sum -= oldest;
            }
            if self.walk_hops_sum > budget {
                self.pipe.complete(class, d, t_walk.max(start) + 1, false);
                return Err(MachineFault::WalkStorm {
                    hops: self.walk_hops_sum,
                    window,
                });
            }
        }

        let kind = if is_store {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        let mut t_walk = t_walk;
        if let Some(p) = self.pages.as_mut() {
            t_walk += p.touch(final_addr);
        }
        // Optional store buffer: a store is admitted as soon as a buffer
        // entry frees up and graduates on admission; the cache access
        // drains in the background.
        let mut buffered_store = false;
        if is_store {
            if let Some(cap) = self.cfg.store_buffer_entries {
                buffered_store = true;
                while self.store_buf.front().is_some_and(|&d| d <= t_walk) {
                    self.store_buf.pop_front();
                }
                if self.store_buf.len() >= cap {
                    let earliest = self.store_buf.pop_front().expect("non-empty");
                    t_walk = t_walk.max(earliest);
                }
            }
        }
        let acc = self.hier.access(t_walk, final_addr.0, kind);
        let l1_miss = if buffered_store {
            false // graduation does not wait for a buffered store's miss
        } else {
            walk_miss || acc.l1_miss()
        };
        let mut complete = if buffered_store {
            self.store_buf.push_back(acc.complete_at);
            t_walk + 1
        } else {
            acc.complete_at
        };

        let out;
        if is_store {
            self.mem.write_data(final_addr, size, val);
            self.spec.on_store(
                addr.word_base().0,
                final_addr.word_base().0,
                acc.complete_at,
            );
            self.last_store_resolve = self.last_store_resolve.max(acc.complete_at);
            out = 0;
        } else {
            // The walk's last probe already fetched the word at the final
            // address; extract the little-endian field instead of paying a
            // second page translation.
            out = if size == WORD_BYTES {
                final_word
            } else {
                (final_word >> (8 * (final_addr.0 & 7))) & ((1u64 << (8 * size)) - 1)
            };
            debug_assert_eq!(out, self.mem.read_data(final_addr, size));
            if self.cfg.dependence_speculation {
                if let Some(v) =
                    self.spec
                        .check_load(start, addr.word_base().0, final_addr.word_base().0)
                {
                    self.stats.misspeculations += 1;
                    self.pipe.replay(v.store_resolved_at);
                    complete = complete.max(v.store_resolved_at + self.cfg.pipeline.replay_penalty);
                }
            }
        }

        if hops > 0 && self.traps_enabled {
            complete += self.cfg.trap_penalty;
            self.stats.traps_taken += 1;
            if self.trap_log.len() < 1 << 20 {
                self.trap_log.push(TrapInfo {
                    initial: addr,
                    final_addr,
                    hops,
                    is_store,
                });
            }
        }

        // Watchdog: a reference stalled past the configured bound raises a
        // typed fault instead of silently absorbing an unbounded latency.
        if let Some(stall) = self.cfg.watchdog.stall_cycles {
            if complete.saturating_sub(start) > stall {
                self.pipe.complete(class, d, complete, l1_miss);
                return Err(MachineFault::NoProgress {
                    at: addr,
                    stalled: complete - start,
                });
            }
        }

        if let Some(tr) = self.trace.as_mut() {
            tr.push(TraceRecord {
                cycle: start,
                kind: if is_store {
                    TraceKind::Store
                } else {
                    TraceKind::Load
                },
                initial: addr,
                final_addr,
                hops,
                l1_miss,
                dep_cycle: dep.cycle(),
                complete_cycle: complete,
            });
        }

        let bucket = (hops as usize).min(HOPS_BUCKETS - 1);
        if is_store {
            self.stats.stores += 1;
            self.stats.store_cycles += complete - start;
            self.stats.store_fwd_cycles += fwd_cycles;
            self.stats.store_hops[bucket] += 1;
            if hops > 0 {
                self.stats.forwarded_stores += 1;
            }
            self.pipe.complete(OpClass::Store, d, complete, l1_miss);
        } else {
            self.stats.loads += 1;
            self.stats.load_cycles += complete - start;
            self.stats.load_fwd_cycles += fwd_cycles;
            self.stats.load_hops[bucket] += 1;
            if hops > 0 {
                self.stats.forwarded_loads += 1;
            }
            self.pipe.complete(OpClass::Load, d, complete, l1_miss);
        }
        Ok((out, Token::at(complete)))
    }

    /// The streamlined demand path for the overwhelmingly common case: an
    /// unforwarded reference on a machine with no observers attached
    /// ([`Machine::fast_ok`]). Returns `None` — having changed nothing but
    /// the page cursor, which is not architectural state — whenever any
    /// precondition fails, and the caller falls through to the general
    /// path.
    ///
    /// Bit-identity argument: under `fast_ok` the general path's optional
    /// branches (injector, pager, tracer, trap log, store buffer, watchdog,
    /// fault delivery) are all no-ops, and with the forwarding bit clear
    /// the walk is zero hops with `final_addr == addr`, `fwd_cycles == 0`
    /// and `final_word` equal to the word just probed — under perfect
    /// forwarding the resolve degenerates to the same thing. What remains
    /// of the general body is exactly the sequence below, in the same
    /// order, so every counter, cache line, pipeline slot and speculation
    /// entry evolves identically.
    pub(crate) fn demand_fast(
        &mut self,
        is_store: bool,
        addr: Addr,
        size: u64,
        val: u64,
        dep: Token,
    ) -> Option<(u64, Token)> {
        if addr.is_null() || validate_access(addr, size).is_err() {
            return None;
        }
        // Pure pre-probe: word + forwarding bit through the run cursor (one
        // page lookup for a whole same-page run of references).
        let mut cur = self.ref_cursor;
        let (word, fbit) = self.mem.read_word_tagged_run(addr, &mut cur);
        self.ref_cursor = cur;
        if fbit {
            return None;
        }
        let d = self.pipe.dispatch();
        let mut start = d.max(dep.cycle());
        if !self.cfg.dependence_speculation && !is_store {
            start = start.max(self.last_store_resolve);
        }
        let wb = addr.word_base().0;
        let kind = if is_store {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        let acc = self.hier.access(start, wb, kind);
        let mut complete = acc.complete_at;
        let out;
        if is_store {
            self.mem.write_data(addr, size, val);
            self.spec.on_store(wb, wb, acc.complete_at);
            self.last_store_resolve = self.last_store_resolve.max(acc.complete_at);
            self.stats.stores += 1;
            self.stats.store_cycles += complete - start;
            self.stats.store_hops[0] += 1;
            self.pipe
                .complete(OpClass::Store, d, complete, acc.l1_miss());
            out = 0;
        } else {
            out = if size == WORD_BYTES {
                word
            } else {
                (word >> (8 * (addr.0 & 7))) & ((1u64 << (8 * size)) - 1)
            };
            debug_assert_eq!(out, self.mem.read_data(addr, size));
            if self.cfg.dependence_speculation {
                if let Some(v) = self.spec.check_load(start, wb, wb) {
                    self.stats.misspeculations += 1;
                    self.pipe.replay(v.store_resolved_at);
                    complete = complete.max(v.store_resolved_at + self.cfg.pipeline.replay_penalty);
                }
            }
            self.stats.loads += 1;
            self.stats.load_cycles += complete - start;
            self.stats.load_hops[0] += 1;
            self.pipe
                .complete(OpClass::Load, d, complete, acc.l1_miss());
        }
        Some((out, Token::at(complete)))
    }

    /// One demand reference through the full fault machinery: injection at
    /// entry, then attempt; on fault, delivery to the registered supervisor
    /// handler with bounded retries (paper §3.2 recoverable traps).
    pub(crate) fn try_demand_entry(
        &mut self,
        is_store: bool,
        addr: Addr,
        size: u64,
        val: u64,
        dep: Token,
    ) -> Result<(u64, Token), MachineFault> {
        self.try_demand(is_store, addr, size, val, dep)
    }

    fn try_demand(
        &mut self,
        is_store: bool,
        addr: Addr,
        size: u64,
        val: u64,
        dep: Token,
    ) -> Result<(u64, Token), MachineFault> {
        if self.fast_ok {
            if let Some(out) = self.demand_fast(is_store, addr, size, val, dep) {
                return Ok(out);
            }
        }
        self.maybe_inject(addr);
        let mut retries = 0u32;
        loop {
            match self.demand_attempt(is_store, addr, size, val, dep) {
                Ok(out) => return Ok(out),
                Err(fault) => match self.deliver_fault(fault) {
                    TrapOutcome::Retry if retries < MAX_FAULT_RETRIES => retries += 1,
                    _ => return Err(fault),
                },
            }
        }
    }

    /// Infallible demand wrapper: records the typed fault for harnesses
    /// (see [`crate::fault::take_last_fault`]) and panics with the crate's
    /// historical message.
    fn demand(
        &mut self,
        is_store: bool,
        addr: Addr,
        size: u64,
        val: u64,
        dep: Token,
    ) -> (u64, Token) {
        match self.try_demand(is_store, addr, size, val, dep) {
            Ok(out) => out,
            Err(fault) => {
                record_last_fault(fault);
                panic!("{fault}");
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault injection and recoverable supervisor traps.
    // ------------------------------------------------------------------

    /// Consults the injector at the head of a demand access and, if a roll
    /// hits, corrupts the target word. In recovery mode the corruption is
    /// detected and repaired immediately (within the same demand), charging
    /// trap-dispatch plus timed `Unforwarded_Write` repairs — so the access
    /// that follows always sees functionally correct memory.
    fn maybe_inject(&mut self, addr: Addr) {
        let Some(inj) = self.injector.as_mut() else {
            return;
        };
        let scramble = inj.roll_chain_scramble();
        let flip = !scramble && inj.roll_fbit_flip();
        let recover = inj.config().recover;
        if !(scramble || flip) {
            return;
        }
        let word = addr.word_base();
        if word.is_null() {
            return;
        }
        let (saved_value, saved_fbit) = self.mem.unforwarded_read(word);
        let kind = if scramble {
            InjectKind::ChainScramble
        } else {
            InjectKind::FbitFlip
        };
        match kind {
            // A forwarding self-loop: guaranteed to be caught by the
            // accurate cycle check — a typed, never-silent corruption.
            InjectKind::ChainScramble => self.mem.unforwarded_write(word, word.0, true),
            InjectKind::FbitFlip => self.mem.set_fbit(word, true),
        }
        self.stats.injected_faults += 1;
        if let Some(inj) = self.injector.as_mut() {
            inj.record(Corruption {
                word,
                saved_value,
                saved_fbit,
                kind,
            });
        }
        if recover {
            self.repair_injected();
        }
    }

    /// Repairs every corruption in the injector's log with timed
    /// `Unforwarded_Write`s (the §3.2 repair story), charging one
    /// trap-dispatch penalty for the exception that detected it. Returns
    /// whether anything was repaired.
    fn repair_injected(&mut self) -> bool {
        let pending = match self.injector.as_mut() {
            Some(inj) => inj.drain_log(),
            None => return false,
        };
        if pending.is_empty() {
            return false;
        }
        self.compute(self.cfg.trap_penalty);
        for c in pending.iter().rev() {
            self.unforwarded_write(c.word, c.saved_value, c.saved_fbit);
            self.stats.fault_repairs += 1;
        }
        true
    }

    /// Delivers `fault` to the registered supervisor handler, charging the
    /// trap penalty (exception dispatch + handler entry). Without a handler
    /// the fault is not deliverable and the outcome is `Abort`.
    fn deliver_fault(&mut self, fault: MachineFault) -> TrapOutcome {
        let Some(mut handler) = self.fault_handler.take() else {
            return TrapOutcome::Abort;
        };
        self.compute(self.cfg.trap_penalty);
        self.stats.faults_delivered += 1;
        let outcome = handler(self, &fault);
        // The handler may have registered a replacement; keep the newer one.
        if self.fault_handler.is_none() {
            self.fault_handler = Some(handler);
        }
        self.recompute_fast_ok();
        outcome
    }

    /// Registers a recoverable supervisor trap handler (paper §3.2): every
    /// fault raised by a demand access or allocation is delivered to it
    /// before propagating, and the handler may repair the machine (e.g.
    /// break a forwarding cycle with [`Machine::unforwarded_write`]) and
    /// ask for a bounded retry. Replaces any previous handler.
    pub fn set_fault_handler(&mut self, handler: FaultHandler) {
        self.fault_handler = Some(handler);
        self.recompute_fast_ok();
    }

    /// Removes the supervisor trap handler; subsequent faults propagate
    /// directly to the caller.
    pub fn clear_fault_handler(&mut self) {
        self.fault_handler = None;
        self.recompute_fast_ok();
    }

    /// Whether a supervisor trap handler is currently registered.
    pub fn has_fault_handler(&self) -> bool {
        self.fault_handler.is_some()
    }

    // ------------------------------------------------------------------
    // Fallible demand API.
    // ------------------------------------------------------------------

    /// Fallible [`Machine::load`]: returns the typed fault instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// [`MachineFault::NullDeref`], [`MachineFault::Misaligned`],
    /// [`MachineFault::ForwardingCycle`], or (with a configured
    /// [`SimConfig::hard_hop_budget`]) [`MachineFault::HopLimitExceeded`] —
    /// each only after any registered handler declined to recover.
    pub fn try_load(&mut self, addr: Addr, size: u64) -> Result<u64, MachineFault> {
        self.try_demand(false, addr, size, 0, Token::ready())
            .map(|(v, _)| v)
    }

    /// Fallible [`Machine::store`].
    ///
    /// # Errors
    ///
    /// As for [`Machine::try_load`].
    pub fn try_store(&mut self, addr: Addr, size: u64, val: u64) -> Result<(), MachineFault> {
        self.try_demand(true, addr, size, val, Token::ready())
            .map(|_| ())
    }

    /// Fallible [`Machine::load_dep`]: a load with an explicit address
    /// dependence that reports faults instead of panicking.
    ///
    /// # Errors
    ///
    /// As for [`Machine::try_load`].
    pub fn try_load_dep(
        &mut self,
        addr: Addr,
        size: u64,
        dep: Token,
    ) -> Result<(u64, Token), MachineFault> {
        self.try_demand(false, addr, size, 0, dep)
    }

    /// Fallible [`Machine::store_dep`]: a store with an explicit address
    /// dependence that reports faults instead of panicking.
    ///
    /// # Errors
    ///
    /// As for [`Machine::try_load`].
    pub fn try_store_dep(
        &mut self,
        addr: Addr,
        size: u64,
        val: u64,
        dep: Token,
    ) -> Result<Token, MachineFault> {
        self.try_demand(true, addr, size, val, dep).map(|(_, t)| t)
    }

    /// Fallible [`Machine::load_word`].
    ///
    /// # Errors
    ///
    /// As for [`Machine::try_load`].
    pub fn try_load_word(&mut self, addr: Addr) -> Result<u64, MachineFault> {
        self.try_load(addr, WORD_BYTES)
    }

    /// Fallible [`Machine::store_word`].
    ///
    /// # Errors
    ///
    /// As for [`Machine::try_load`].
    pub fn try_store_word(&mut self, addr: Addr, val: u64) -> Result<(), MachineFault> {
        self.try_store(addr, WORD_BYTES, val)
    }

    /// Loads `size` bytes at `addr`, following forwarding chains.
    ///
    /// # Panics
    ///
    /// Panics on a null dereference, a misaligned access, or a genuine
    /// forwarding cycle (the simulated program is aborted, as in §3.2).
    /// The typed fault is recorded for [`crate::fault::take_last_fault`]
    /// before the panic; [`Machine::try_load`] is the non-panicking twin.
    pub fn load(&mut self, addr: Addr, size: u64) -> u64 {
        self.demand(false, addr, size, 0, Token::ready()).0
    }

    /// [`Machine::load`] with an explicit address dependence: the access
    /// cannot issue before `dep` is ready. Returns the value and its token.
    pub fn load_dep(&mut self, addr: Addr, size: u64, dep: Token) -> (u64, Token) {
        self.demand(false, addr, size, 0, dep)
    }

    /// Stores the low `size` bytes of `val` at `addr`, following forwarding.
    ///
    /// # Panics
    ///
    /// As for [`Machine::load`].
    pub fn store(&mut self, addr: Addr, size: u64, val: u64) {
        self.demand(true, addr, size, val, Token::ready());
    }

    /// [`Machine::store`] with an explicit dependence; returns the
    /// completion token.
    pub fn store_dep(&mut self, addr: Addr, size: u64, val: u64, dep: Token) -> Token {
        self.demand(true, addr, size, val, dep).1
    }

    // Word-sized sugar used pervasively by the applications.

    /// Loads one 64-bit word.
    pub fn load_word(&mut self, addr: Addr) -> u64 {
        self.load(addr, WORD_BYTES)
    }

    /// Loads one 64-bit word with a dependence token.
    pub fn load_word_dep(&mut self, addr: Addr, dep: Token) -> (u64, Token) {
        self.load_dep(addr, WORD_BYTES, dep)
    }

    /// Stores one 64-bit word.
    pub fn store_word(&mut self, addr: Addr, val: u64) {
        self.store(addr, WORD_BYTES, val)
    }

    /// Loads a pointer (a word interpreted as an address).
    pub fn load_ptr(&mut self, addr: Addr) -> Addr {
        Addr(self.load_word(addr))
    }

    /// Loads a pointer with a dependence token.
    pub fn load_ptr_dep(&mut self, addr: Addr, dep: Token) -> (Addr, Token) {
        let (v, t) = self.load_word_dep(addr, dep);
        (Addr(v), t)
    }

    /// Stores a pointer.
    pub fn store_ptr(&mut self, addr: Addr, val: Addr) {
        self.store_word(addr, val.0)
    }

    // ------------------------------------------------------------------
    // ISA extensions (paper Fig. 3).
    // ------------------------------------------------------------------

    /// `Read_FBit`: reads the forwarding bit of the word containing `addr`.
    /// This is a memory operation — the bit travels with the cache line.
    pub fn read_fbit(&mut self, addr: Addr) -> bool {
        self.read_fbit_dep(addr, Token::ready()).0
    }

    /// [`Machine::read_fbit`] with an address dependence.
    pub fn read_fbit_dep(&mut self, addr: Addr, dep: Token) -> (bool, Token) {
        let d = self.pipe.dispatch();
        let start = d.max(dep.cycle());
        let acc = self
            .hier
            .access(start, addr.word_base().0, AccessKind::Load);
        self.stats.fbit_reads += 1;
        self.pipe
            .complete(OpClass::Load, d, acc.complete_at, acc.l1_miss());
        (self.mem.fbit(addr), Token::at(acc.complete_at))
    }

    /// `Unforwarded_Read`: reads a whole word and its forwarding bit with
    /// forwarding disabled.
    pub fn unforwarded_read(&mut self, addr: Addr) -> (u64, bool) {
        let (v, b, _) = self.unforwarded_read_dep(addr, Token::ready());
        (v, b)
    }

    /// [`Machine::unforwarded_read`] with an address dependence.
    pub fn unforwarded_read_dep(&mut self, addr: Addr, dep: Token) -> (u64, bool, Token) {
        let d = self.pipe.dispatch();
        let start = d.max(dep.cycle());
        let acc = self
            .hier
            .access(start, addr.word_base().0, AccessKind::Load);
        self.stats.unforwarded_ops += 1;
        self.pipe
            .complete(OpClass::Load, d, acc.complete_at, acc.l1_miss());
        let (v, b) = self.mem.unforwarded_read(addr);
        (v, b, Token::at(acc.complete_at))
    }

    /// `Unforwarded_Write`: atomically writes a whole word and its
    /// forwarding bit with forwarding disabled.
    pub fn unforwarded_write(&mut self, addr: Addr, value: u64, fbit: bool) -> Token {
        let d = self.pipe.dispatch();
        let acc = self.hier.access(d, addr.word_base().0, AccessKind::Store);
        self.stats.unforwarded_ops += 1;
        self.mem.unforwarded_write(addr, value, fbit);
        let w = addr.word_base().0;
        self.spec.on_store(w, w, acc.complete_at);
        self.last_store_resolve = self.last_store_resolve.max(acc.complete_at);
        self.pipe
            .complete(OpClass::Store, d, acc.complete_at, acc.l1_miss());
        Token::at(acc.complete_at)
    }

    // ------------------------------------------------------------------
    // Prefetch and compute.
    // ------------------------------------------------------------------

    /// Issues one block-prefetch instruction covering `lines` consecutive
    /// cache lines starting at the line containing `addr`. The prefetch
    /// address is assumed available at dispatch (e.g. computed from an
    /// induction variable); use [`Machine::prefetch_dep`] when the address
    /// comes from a load, or the pointer-chasing limit disappears.
    pub fn prefetch(&mut self, addr: Addr, lines: u64) {
        self.prefetch_dep(addr, lines, Token::ready());
    }

    /// [`Machine::prefetch`] with an explicit address dependence: the
    /// prefetch cannot launch before `dep` is ready. This models the
    /// pointer-chasing problem of §2.2 — a prefetch of `p->next->next`
    /// cannot start until `p->next` has been loaded.
    pub fn prefetch_dep(&mut self, addr: Addr, lines: u64, dep: Token) {
        let d = self.pipe.dispatch();
        self.hier.prefetch_block(d.max(dep.cycle()), addr.0, lines);
        self.stats.prefetches += 1;
        self.pipe.complete(OpClass::Prefetch, d, d + 1, false);
    }

    /// Executes `n` single-cycle ALU instructions with no data dependences.
    pub fn compute(&mut self, n: u64) {
        for _ in 0..n {
            self.pipe.compute(0);
        }
        self.stats.computes += n;
    }

    /// Executes `n` dependent single-cycle ALU instructions consuming
    /// `dep`; returns the token of the last one.
    pub fn compute_dep(&mut self, n: u64, dep: Token) -> Token {
        let mut t = dep;
        for _ in 0..n {
            t = Token::at(self.pipe.compute(t.cycle()));
        }
        self.stats.computes += n;
        t
    }

    // ------------------------------------------------------------------
    // Heap.
    // ------------------------------------------------------------------

    /// Decides whether an injected allocation failure fires for this
    /// request, and if so either auto-recovers (transient failure: trap
    /// charged, then the real allocation proceeds) or raises a fault for
    /// the delivery loop. Returns the fault to raise, if any.
    fn maybe_inject_alloc_fail(&mut self, requested: u64) -> Option<MachineFault> {
        let inj = self.injector.as_mut()?;
        if !inj.roll_alloc_fail() {
            return None;
        }
        let recover = inj.config().recover;
        self.stats.injected_faults += 1;
        if recover {
            // The supervisor observes the transient failure, releases the
            // pressure (modelled as handler work), and the retry succeeds.
            self.compute(self.cfg.trap_penalty);
            self.stats.fault_repairs += 1;
            None
        } else {
            Some(MachineFault::HeapExhausted { requested })
        }
    }

    /// Fallible [`Machine::malloc`]: returns [`MachineFault::HeapExhausted`]
    /// instead of panicking, after any registered handler declined to
    /// recover (a handler that frees memory and returns `Retry` lets the
    /// allocation succeed).
    ///
    /// # Errors
    ///
    /// [`MachineFault::HeapExhausted`].
    pub fn try_malloc(&mut self, bytes: u64) -> Result<Addr, MachineFault> {
        self.compute(self.cfg.malloc_cost);
        self.stats.mallocs += 1;
        if let Some(fault) = self.maybe_inject_alloc_fail(bytes) {
            match self.deliver_fault(fault) {
                TrapOutcome::Retry => {} // injected failure was transient
                TrapOutcome::Abort => return Err(fault),
            }
        }
        let mut retries = 0u32;
        loop {
            match self.heap.alloc(bytes) {
                Ok(a) => return Ok(a),
                Err(e) => {
                    let fault = MachineFault::from(e);
                    match self.deliver_fault(fault) {
                        TrapOutcome::Retry if retries < MAX_FAULT_RETRIES => retries += 1,
                        _ => return Err(fault),
                    }
                }
            }
        }
    }

    /// Allocates `bytes` of word-aligned heap memory, charging the
    /// allocator's instruction cost.
    ///
    /// # Panics
    ///
    /// Panics if the simulated heap is exhausted. [`Machine::try_malloc`]
    /// is the non-panicking twin.
    pub fn malloc(&mut self, bytes: u64) -> Addr {
        self.try_malloc(bytes).unwrap_or_else(|fault| {
            record_last_fault(fault);
            panic!("{fault}");
        })
    }

    /// Fallible [`Machine::free`]: frees a heap block and everything
    /// reachable through its forwarding chain (§3.3 wrapper deallocation),
    /// reporting corruption as a typed fault instead of panicking.
    ///
    /// # Errors
    ///
    /// [`MachineFault::ForwardingCycle`] if the block's forwarding chain is
    /// cyclic (nothing has been freed when this is returned), or
    /// [`MachineFault::InvalidFree`] if `addr` is not the base of a live
    /// allocation.
    pub fn try_free(&mut self, addr: Addr) -> Result<(), MachineFault> {
        self.compute(self.cfg.free_cost);
        self.stats.frees += 1;
        // Walk the chain of the first word, paying one unforwarded read per
        // element, and collect chain targets that are themselves blocks.
        let mut blocks = vec![addr];
        let mut cur = addr.word_base();
        let mut seen = HashSet::new();
        seen.insert(cur);
        let mut hops = 0u32;
        loop {
            let (val, fbit, _) = self.unforwarded_read_dep(cur, Token::ready());
            if !fbit {
                break;
            }
            cur = Addr(val).word_base();
            hops += 1;
            if !seen.insert(cur) {
                return Err(MachineFault::ForwardingCycle { at: cur, hops });
            }
            if self.heap.is_live(cur) {
                self.stats.chain_frees += 1;
                blocks.push(cur);
            }
        }
        for b in blocks {
            // Reinitialize the block's forwarding bits before it can be
            // recycled: §3.3 requires every word to start with a clear bit
            // when next handed to the application.
            let words = match self.heap.block_size(b) {
                Some(bytes) => bytes / WORD_BYTES,
                None => return Err(MachineFault::InvalidFree { addr: b }),
            };
            for w in 0..words {
                self.mem.set_fbit(b.add_words(w), false);
            }
            self.compute(1 + words / 8); // amortized clearing cost
            self.heap.free(b).expect("checked live");
        }
        Ok(())
    }

    /// Frees a heap block, first deallocating every block reachable through
    /// its forwarding chain — the wrapper deallocation of paper §3.3.
    ///
    /// Chain targets that are not independently-allocated blocks (e.g.
    /// relocation-pool space) are skipped; pools are reclaimed wholesale.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not the base of a live allocation or its chain
    /// is cyclic. [`Machine::try_free`] is the non-panicking twin.
    pub fn free(&mut self, addr: Addr) {
        if let Err(fault) = self.try_free(addr) {
            record_last_fault(fault);
            match fault {
                MachineFault::ForwardingCycle { .. } => {
                    panic!("forwarding cycle during free({addr}): {fault}")
                }
                _ => panic!("{fault}"),
            }
        }
    }

    /// Fallible [`Machine::pool_alloc`].
    ///
    /// # Errors
    ///
    /// [`MachineFault::PoolExhausted`] when the pool cannot obtain a slab,
    /// after any registered handler declined to recover.
    pub fn try_pool_alloc(&mut self, pool: &mut Pool, bytes: u64) -> Result<Addr, MachineFault> {
        self.compute(6);
        if self.maybe_inject_alloc_fail(bytes).is_some() {
            let fault = MachineFault::PoolExhausted { requested: bytes };
            match self.deliver_fault(fault) {
                TrapOutcome::Retry => {}
                TrapOutcome::Abort => return Err(fault),
            }
        }
        let before = pool.bytes_handed_out();
        let mut retries = 0u32;
        let a = loop {
            match pool.alloc(&mut self.heap, bytes) {
                Ok(a) => break a,
                Err(_) => {
                    let fault = MachineFault::PoolExhausted { requested: bytes };
                    match self.deliver_fault(fault) {
                        TrapOutcome::Retry if retries < MAX_FAULT_RETRIES => retries += 1,
                        _ => return Err(fault),
                    }
                }
            }
        };
        self.stats.relocation_space_bytes += pool.bytes_handed_out() - before;
        Ok(a)
    }

    /// Allocates `bytes` from a relocation pool (contiguous space), charging
    /// a small instruction cost and recording the space overhead that the
    /// paper's Table 1 reports.
    ///
    /// # Panics
    ///
    /// Panics if the simulated heap is exhausted. [`Machine::try_pool_alloc`]
    /// is the non-panicking twin.
    pub fn pool_alloc(&mut self, pool: &mut Pool, bytes: u64) -> Addr {
        self.try_pool_alloc(pool, bytes).unwrap_or_else(|fault| {
            record_last_fault(fault);
            panic!("{fault}");
        })
    }

    /// Fallible [`Machine::pool_alloc_aligned`].
    ///
    /// # Errors
    ///
    /// As for [`Machine::try_pool_alloc`].
    pub fn try_pool_alloc_aligned(
        &mut self,
        pool: &mut Pool,
        bytes: u64,
        align: u64,
    ) -> Result<Addr, MachineFault> {
        self.compute(8);
        if self.maybe_inject_alloc_fail(bytes).is_some() {
            let fault = MachineFault::PoolExhausted { requested: bytes };
            match self.deliver_fault(fault) {
                TrapOutcome::Retry => {}
                TrapOutcome::Abort => return Err(fault),
            }
        }
        let before = pool.bytes_handed_out();
        let mut retries = 0u32;
        let a = loop {
            match pool.alloc_aligned(&mut self.heap, bytes, align) {
                Ok(a) => break a,
                Err(_) => {
                    let fault = MachineFault::PoolExhausted { requested: bytes };
                    match self.deliver_fault(fault) {
                        TrapOutcome::Retry if retries < MAX_FAULT_RETRIES => retries += 1,
                        _ => return Err(fault),
                    }
                }
            }
        };
        self.stats.relocation_space_bytes += pool.bytes_handed_out() - before;
        Ok(a)
    }

    /// Allocates an `align`-aligned chunk from a relocation pool. Used when
    /// relocation targets must respect cache-line boundaries (subtree
    /// clusters, false-sharing separation).
    ///
    /// # Panics
    ///
    /// Panics if the simulated heap is exhausted.
    /// [`Machine::try_pool_alloc_aligned`] is the non-panicking twin.
    pub fn pool_alloc_aligned(&mut self, pool: &mut Pool, bytes: u64, align: u64) -> Addr {
        self.try_pool_alloc_aligned(pool, bytes, align)
            .unwrap_or_else(|fault| {
                record_last_fault(fault);
                panic!("{fault}");
            })
    }

    /// Creates a relocation pool with the configured slab size.
    pub fn new_pool(&self) -> Pool {
        Pool::new(self.cfg.pool_slab_bytes)
    }

    // ------------------------------------------------------------------
    // User-level traps (paper §3.2).
    // ------------------------------------------------------------------

    /// Enables or disables the user-level trap taken on every forwarded
    /// reference. While enabled, each forwarded reference costs
    /// `trap_penalty` extra cycles and is recorded.
    pub fn set_traps_enabled(&mut self, enabled: bool) {
        self.traps_enabled = enabled;
        self.recompute_fast_ok();
    }

    /// Drains the recorded trap events (profiling-tool style: the
    /// application inspects them and may fix stray pointers itself).
    pub fn take_traps(&mut self) -> Vec<TrapInfo> {
        std::mem::take(&mut self.trap_log)
    }

    /// Writes a word functionally WITHOUT any timing effect — no
    /// instruction, no cache access, no trace record. Scenario-building
    /// scaffolding for tests and trace tooling; simulated programs should
    /// use [`Machine::store`].
    pub fn poke_word(&mut self, addr: Addr, value: u64) {
        self.mem.write_data(addr.word_base(), WORD_BYTES, value);
    }

    // ------------------------------------------------------------------
    // Reference tracing.
    // ------------------------------------------------------------------

    /// Starts recording demand references into a trace of at most
    /// `capacity` records (older runs' records are kept until taken).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
        self.recompute_fast_ok();
    }

    /// Stops tracing and returns `(records, dropped_count)`.
    pub fn take_trace(&mut self) -> (Vec<TraceRecord>, u64) {
        let out = self.trace.take().map(|mut t| t.take()).unwrap_or_default();
        self.recompute_fast_ok();
        out
    }

    // ------------------------------------------------------------------
    // Bookkeeping used by the relocation library (crate-internal).
    // ------------------------------------------------------------------

    pub(crate) fn note_relocation(&mut self, words: u64) {
        self.stats.relocations += 1;
        self.stats.relocated_words += words;
    }

    pub(crate) fn note_ptr_compare(&mut self) {
        self.stats.ptr_compares += 1;
    }

    /// Finishes the run: drains the pipeline and returns all statistics.
    pub fn finish(mut self) -> RunStats {
        self.stats.page_faults = self.pages.as_ref().map(|p| p.faults()).unwrap_or(0);
        RunStats {
            pipeline: self.pipe.finish(),
            cache: self.hier.stats(),
            bytes_l1_l2: self.hier.bytes_l1_l2(),
            bytes_l2_mem: self.hier.bytes_l2_mem(),
            fwd: self.stats,
            mem: self.mem.stats(),
            heap: self.heap.stats(),
            epoch: self.epoch_stats,
        }
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("now", &self.pipe.now())
            .field("loads", &self.stats.loads)
            .field("stores", &self.stats.stores)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(SimConfig::default())
    }

    #[test]
    fn load_store_roundtrip() {
        let mut m = machine();
        let a = m.malloc(32);
        m.store(a, 8, 0xABCD);
        m.store(a + 8, 4, 7);
        assert_eq!(m.load(a, 8), 0xABCD);
        assert_eq!(m.load(a + 8, 4), 7);
        let s = m.finish();
        assert_eq!(s.fwd.loads, 2);
        assert_eq!(s.fwd.stores, 2);
        assert!(s.cycles() > 0);
    }

    #[test]
    fn forwarded_load_returns_new_value_and_counts_hop() {
        let mut m = machine();
        let old = m.malloc(8);
        let new = m.malloc(8);
        m.store(new, 8, 99);
        m.unforwarded_write(old, new.0, true);
        assert_eq!(m.load(old, 8), 99, "stray access forwarded");
        let s = m.finish();
        assert_eq!(s.fwd.forwarded_loads, 1);
        assert_eq!(s.fwd.load_hops[1], 1);
        assert!(s.fwd.load_fwd_cycles > 0);
    }

    #[test]
    fn forwarded_store_writes_to_final_location() {
        let mut m = machine();
        let old = m.malloc(8);
        let new = m.malloc(8);
        m.unforwarded_write(old, new.0, true);
        m.store(old + 4, 4, 42);
        assert_eq!(m.load(new + 4, 4), 42);
        let s = m.finish();
        assert_eq!(s.fwd.forwarded_stores, 1);
    }

    #[test]
    fn perfect_forwarding_has_zero_fwd_cycles() {
        let mut m = Machine::new(SimConfig::default().with_perfect_forwarding());
        let old = m.malloc(8);
        let new = m.malloc(8);
        m.store(new, 8, 5);
        m.unforwarded_write(old, new.0, true);
        assert_eq!(m.load(old, 8), 5);
        let s = m.finish();
        assert_eq!(s.fwd.load_fwd_cycles, 0);
        assert_eq!(
            s.fwd.forwarded_loads, 0,
            "Perf: as if pointers were updated"
        );
    }

    #[test]
    fn forwarding_slower_than_direct() {
        // Time a forwarded load vs a direct one on identical machines.
        let run = |forwarded: bool| -> u64 {
            let mut m = machine();
            let old = m.malloc(8);
            let new = m.malloc(8);
            m.store(new, 8, 1);
            if forwarded {
                m.unforwarded_write(old, new.0, true);
                m.load(old, 8);
            } else {
                m.load(new, 8);
            }
            m.finish().cycles()
        };
        assert!(run(true) > run(false));
    }

    #[test]
    #[should_panic(expected = "forwarding cycle")]
    fn forwarding_cycle_aborts() {
        let mut m = machine();
        let a = m.malloc(8);
        let b = m.malloc(8);
        m.unforwarded_write(a, b.0, true);
        m.unforwarded_write(b, a.0, true);
        let _ = m.load(a, 8);
    }

    #[test]
    fn long_chain_is_false_alarm_not_cycle() {
        let mut m = machine();
        let blocks: Vec<Addr> = (0..20).map(|_| m.malloc(8)).collect();
        m.store(blocks[19], 8, 777);
        for w in blocks.windows(2) {
            m.unforwarded_write(w[0], w[1].0, true);
        }
        assert_eq!(m.load(blocks[0], 8), 777);
        let s = m.finish();
        assert_eq!(
            s.fwd.load_hops[HOPS_BUCKETS - 1],
            1,
            "19 hops in top bucket"
        );
    }

    #[test]
    #[should_panic(expected = "null dereference")]
    fn null_deref_panics() {
        let mut m = machine();
        let _ = m.load(Addr::NULL, 8);
    }

    #[test]
    fn unforwarded_ops_bypass_forwarding() {
        let mut m = machine();
        let old = m.malloc(8);
        let new = m.malloc(8);
        m.unforwarded_write(old, new.0, true);
        let (v, b) = m.unforwarded_read(old);
        assert_eq!((v, b), (new.0, true), "sees the forwarding address itself");
        assert!(m.read_fbit(old));
        assert!(!m.read_fbit(new));
    }

    #[test]
    fn dependent_loads_serialize() {
        // A chain of dependent loads must take at least the sum of miss
        // latencies; independent loads overlap.
        let run = |dependent: bool| -> u64 {
            let mut m = machine();
            let addrs: Vec<Addr> = (0..8).map(|_| m.malloc(4096)).collect();
            let mut tok = Token::ready();
            for a in &addrs {
                if dependent {
                    let (_, t) = m.load_word_dep(*a, tok);
                    tok = t;
                } else {
                    m.load_word(*a);
                }
            }
            m.finish().cycles()
        };
        let dep = run(true);
        let indep = run(false);
        assert!(
            dep > indep * 2,
            "dependent {dep} vs independent {indep}: pointer chasing must serialize"
        );
    }

    #[test]
    fn prefetch_hides_latency() {
        let run = |prefetch: bool| -> u64 {
            let mut m = machine();
            let a = m.malloc(4096);
            if prefetch {
                m.prefetch(a, 1);
                m.compute(200); // give the prefetch time to complete
            } else {
                m.compute(200);
            }
            m.load_word(a);
            m.finish().cycles()
        };
        assert!(run(true) < run(false));
    }

    #[test]
    fn free_follows_chain() {
        let mut m = machine();
        let old = m.malloc(16);
        let new = m.malloc(16);
        m.unforwarded_write(old, new.0, true);
        m.free(old);
        let s = m.heap().stats();
        assert_eq!(s.frees, 2, "both old and relocated block freed");
        let rs = m.finish();
        assert_eq!(rs.fwd.chain_frees, 1);
    }

    #[test]
    fn traps_record_forwarded_references() {
        let mut m = machine();
        let old = m.malloc(8);
        let new = m.malloc(8);
        m.unforwarded_write(old, new.0, true);
        m.set_traps_enabled(true);
        m.load(old, 8);
        let traps = m.take_traps();
        assert_eq!(traps.len(), 1);
        assert_eq!(traps[0].initial, old);
        assert_eq!(traps[0].final_addr, new);
        assert_eq!(traps[0].hops, 1);
        assert!(!traps[0].is_store);
        assert!(m.take_traps().is_empty(), "drained");
        let s = m.finish();
        assert_eq!(s.fwd.traps_taken, 1);
    }

    #[test]
    fn dependence_speculation_violation_detected() {
        let mut m = machine();
        let old = m.malloc(8);
        let new = m.malloc(8);
        m.unforwarded_write(old, new.0, true);
        // A store through the OLD address resolves late to `new`...
        m.store(old, 8, 1);
        // ...while a load directly to `new` issues immediately (no dep).
        m.load(new, 8);
        let s = m.finish();
        assert_eq!(s.fwd.misspeculations, 1);
        assert_eq!(s.pipeline.replays, 1);
    }

    #[test]
    fn no_speculation_mode_is_slower() {
        let run = |speculate: bool| -> u64 {
            let mut m = Machine::new(SimConfig {
                dependence_speculation: speculate,
                ..SimConfig::default()
            });
            let a = m.malloc(1 << 16);
            for i in 0..64u64 {
                m.store(a + i * 512, 8, i);
                m.load(a + 32768 + i * 512, 8);
            }
            m.finish().cycles()
        };
        assert!(run(false) > run(true));
    }

    #[test]
    fn compute_dep_chains_latency() {
        let mut m = machine();
        let t = m.compute_dep(10, Token::at(100));
        assert!(t.cycle() >= 110);
    }

    #[test]
    fn store_buffer_hides_store_miss_latency() {
        let run = |entries: Option<usize>| -> (u64, u64) {
            let mut m = Machine::new(SimConfig {
                store_buffer_entries: entries,
                ..SimConfig::default()
            });
            let a = m.malloc(1 << 20);
            for i in 0..64u64 {
                m.store_word(a + i * 4096, i);
                m.compute(4);
            }
            let s = m.finish();
            (s.cycles(), s.pipeline.slots.store_stall)
        };
        let (no_buf_cycles, no_buf_stall) = run(None);
        let (buf_cycles, buf_stall) = run(Some(8));
        assert!(
            buf_cycles < no_buf_cycles,
            "{buf_cycles} !< {no_buf_cycles}"
        );
        assert!(buf_stall < no_buf_stall, "{buf_stall} !< {no_buf_stall}");
    }

    #[test]
    fn store_buffer_preserves_values_and_ordering() {
        let mut m = Machine::new(SimConfig {
            store_buffer_entries: Some(4),
            ..SimConfig::default()
        });
        let a = m.malloc(256);
        for i in 0..32u64 {
            m.store_word(a.add_words(i % 8), i);
        }
        for i in 24..32u64 {
            assert_eq!(m.load_word(a.add_words(i % 8)), i);
        }
    }

    #[test]
    fn paging_layer_counts_faults_and_slows_misses() {
        let cfg = SimConfig {
            paging: Some(crate::paging::PagingConfig {
                page_bytes: 4096,
                resident_pages: 4,
                fault_penalty: 10_000,
            }),
            ..SimConfig::default()
        };
        let mut m = Machine::new(cfg);
        let a = m.malloc(1 << 20);
        let mut tok = Token::ready();
        for i in 0..16u64 {
            let (_, t) = m.load_word_dep(a + i * 65536, tok);
            tok = t;
        }
        let s = m.finish();
        assert_eq!(s.fwd.page_faults, 16);
        assert!(s.cycles() > 16 * 10_000, "dependent faults serialize");
    }

    #[test]
    fn trace_records_references_with_forwarding_detail() {
        let mut m = machine();
        let old = m.malloc(8);
        let new = m.malloc(8);
        m.store_word(new, 1);
        m.unforwarded_write(old, new.0, true);
        m.enable_trace(16);
        m.load_word(old);
        m.store_word(new, 2);
        let (records, dropped) = m.take_trace();
        assert_eq!(dropped, 0);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].kind, crate::trace::TraceKind::Load);
        assert_eq!(records[0].initial, old);
        assert_eq!(records[0].final_addr, new);
        assert_eq!(records[0].hops, 1);
        assert_eq!(records[1].kind, crate::trace::TraceKind::Store);
        assert_eq!(records[1].hops, 0);
        // Tracing is off after take_trace.
        m.load_word(new);
        assert!(m.take_trace().0.is_empty());
    }

    #[test]
    fn try_load_reports_typed_cycle() {
        let mut m = machine();
        let a = m.malloc(8);
        let b = m.malloc(8);
        m.unforwarded_write(a, b.0, true);
        m.unforwarded_write(b, a.0, true);
        match m.try_load(a, 8) {
            Err(MachineFault::ForwardingCycle { hops, .. }) => assert!(hops >= 2),
            other => panic!("expected ForwardingCycle, got {other:?}"),
        }
        // The machine is still usable after a typed fault.
        let c = m.malloc(8);
        m.store_word(c, 9);
        assert_eq!(m.try_load_word(c), Ok(9));
    }

    #[test]
    fn handler_repairs_cycle_and_access_retries() {
        let mut m = machine();
        let a = m.malloc(8);
        let b = m.malloc(8);
        m.unforwarded_write(a, b.0, true);
        m.unforwarded_write(b, a.0, true);
        m.set_fault_handler(Box::new(move |m, fault| {
            assert!(matches!(fault, MachineFault::ForwardingCycle { .. }));
            m.unforwarded_write(b, 4242, false);
            TrapOutcome::Retry
        }));
        assert_eq!(m.try_load_word(a), Ok(4242));
        let s = m.finish();
        assert_eq!(s.fwd.faults_delivered, 1);
    }

    #[test]
    fn handler_that_never_repairs_cannot_livelock() {
        let mut m = machine();
        let a = m.malloc(8);
        m.unforwarded_write(a, a.0, true); // self-loop
        m.set_fault_handler(Box::new(|_, _| TrapOutcome::Retry));
        assert!(matches!(
            m.try_load_word(a),
            Err(MachineFault::ForwardingCycle { .. })
        ));
        let s = m.finish();
        assert_eq!(s.fwd.faults_delivered, u64::from(MAX_FAULT_RETRIES) + 1);
    }

    #[test]
    fn handler_abort_propagates_fault() {
        let mut m = machine();
        let a = m.malloc(8);
        m.unforwarded_write(a, a.0, true);
        m.set_fault_handler(Box::new(|_, _| TrapOutcome::Abort));
        assert!(m.try_load_word(a).is_err());
        let s = m.finish();
        assert_eq!(s.fwd.faults_delivered, 1);
    }

    #[test]
    fn hard_hop_budget_rejects_long_acyclic_chain() {
        let mut m = Machine::new(SimConfig {
            hard_hop_budget: Some(4),
            ..SimConfig::default()
        });
        let blocks: Vec<Addr> = (0..8).map(|_| m.malloc(8)).collect();
        m.poke_word(blocks[7], 1);
        for w in blocks.windows(2) {
            m.unforwarded_write(w[0], w[1].0, true);
        }
        assert!(matches!(
            m.try_load_word(blocks[0]),
            Err(MachineFault::HopLimitExceeded { hops: 5, .. })
        ));
        // A short chain is still fine under the budget.
        assert_eq!(m.try_load_word(blocks[4]), Ok(1));
    }

    #[test]
    fn try_demand_validates_before_timing() {
        let mut m = machine();
        assert_eq!(
            m.try_load(Addr::NULL, 8),
            Err(MachineFault::NullDeref { is_store: false })
        );
        let a = m.malloc(16);
        assert_eq!(
            m.try_store(a + 1, 4, 0),
            Err(MachineFault::Misaligned {
                addr: a + 1,
                size: 4
            })
        );
        assert_eq!(
            m.try_load(a, 3),
            Err(MachineFault::Misaligned { addr: a, size: 3 })
        );
    }

    #[test]
    fn try_free_reports_cycle_without_freeing() {
        let mut m = machine();
        let a = m.malloc(16);
        let b = m.malloc(16);
        m.unforwarded_write(a, b.0, true);
        m.unforwarded_write(b, a.0, true);
        assert!(matches!(
            m.try_free(a),
            Err(MachineFault::ForwardingCycle { .. })
        ));
        assert!(m.heap().is_live(a) && m.heap().is_live(b), "nothing freed");
        assert_eq!(
            m.try_free(m.config().heap_base + 8),
            Err(MachineFault::InvalidFree {
                addr: SimConfig::default().heap_base + 8
            })
        );
    }

    #[test]
    fn try_malloc_reports_exhaustion_and_handler_can_rescue() {
        let mut m = Machine::new(SimConfig {
            heap_capacity: 64,
            ..SimConfig::default()
        });
        let a = m.try_malloc(64).expect("fits");
        assert_eq!(
            m.try_malloc(64),
            Err(MachineFault::HeapExhausted { requested: 64 })
        );
        // A handler that frees memory rescues the allocation.
        m.set_fault_handler(Box::new(move |m, fault| {
            assert!(matches!(fault, MachineFault::HeapExhausted { .. }));
            m.free(a);
            TrapOutcome::Retry
        }));
        assert!(m.try_malloc(64).is_ok());
    }

    #[test]
    fn injection_with_recovery_preserves_values() {
        let mut m = Machine::new(SimConfig {
            fault_injection: Some(crate::inject::InjectConfig {
                seed: 7,
                fbit_flip_ppm: 250_000,
                chain_scramble_ppm: 250_000,
                recover: true,
                ..crate::inject::InjectConfig::default()
            }),
            ..SimConfig::default()
        });
        let a = m.malloc(256);
        for i in 0..32u64 {
            m.store_word(a.add_words(i % 8), i);
            assert_eq!(m.load_word(a.add_words(i % 8)), i);
        }
        let s = m.finish();
        assert!(s.fwd.injected_faults > 0, "campaign must actually inject");
        assert_eq!(
            s.fwd.fault_repairs, s.fwd.injected_faults,
            "recovery mode repairs every injection"
        );
    }

    #[test]
    fn injection_without_recovery_is_typed_never_silent() {
        let mut m = Machine::new(SimConfig {
            fault_injection: Some(crate::inject::InjectConfig {
                seed: 11,
                chain_scramble_ppm: 500_000,
                recover: false,
                ..crate::inject::InjectConfig::default()
            }),
            ..SimConfig::default()
        });
        let a = m.malloc(64);
        let mut faulted = false;
        for i in 0..16u64 {
            match m.try_store_word(a.add_words(i % 4), i) {
                Ok(()) => {}
                Err(MachineFault::ForwardingCycle { .. }) => {
                    faulted = true;
                    break;
                }
                Err(other) => panic!("unexpected fault {other:?}"),
            }
        }
        assert!(faulted, "p=0.5 scramble per access must fire within 16");
    }

    #[test]
    fn stats_instruction_mix() {
        let mut m = machine();
        let a = m.malloc(64);
        m.store_word(a, 1);
        m.load_word(a);
        m.prefetch(a, 2);
        m.compute(5);
        m.read_fbit(a);
        m.unforwarded_read(a);
        let s = m.finish();
        assert_eq!(s.fwd.stores, 1);
        assert_eq!(s.fwd.loads, 1);
        assert_eq!(s.fwd.prefetches, 1);
        assert!(s.fwd.computes >= 5);
        assert_eq!(s.fwd.fbit_reads, 1);
        assert_eq!(s.fwd.unforwarded_ops, 1);
        assert_eq!(s.fwd.mallocs, 1);
    }
}
