//! Packing-style layout optimizations: table merging (Compress), region
//! copying (tiling) and data coloring — all made safe by memory forwarding.

use crate::machine::Machine;
use crate::reloc::relocate;
use memfwd_tagmem::{Addr, Pool};

/// The merged table produced by [`merge_tables`]: entry `i` holds
/// `a[i]` at [`MergedTables::a_entry`] and `b[i]` immediately after it at
/// [`MergedTables::b_entry`], so one probe touches a single cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergedTables {
    /// Base address of the merged table.
    pub base: Addr,
    /// Number of entries.
    pub entries: u64,
}

impl MergedTables {
    /// Address of `a[i]` in the merged layout.
    pub fn a_entry(&self, i: u64) -> Addr {
        self.base.add_words(2 * i)
    }

    /// Address of `b[i]` in the merged layout.
    pub fn b_entry(&self, i: u64) -> Addr {
        self.base.add_words(2 * i + 1)
    }
}

/// Merges two parallel word-entry tables `a` and `b` of `n` entries into a
/// single interleaved table `T` with `T[2i] = a[i]`, `T[2i+1] = b[i]`
/// (the Compress optimization of paper §5.3). Every old word is left
/// forwarding to its new slot, so stale pointers into either table stay
/// correct.
///
/// # Panics
///
/// Panics on heap exhaustion or forwarding cycles.
pub fn merge_tables(m: &mut Machine, a: Addr, b: Addr, n: u64, pool: &mut Pool) -> MergedTables {
    let base = m.pool_alloc(pool, 2 * n * 8);
    for i in 0..n {
        relocate(m, a.add_words(i), base.add_words(2 * i), 1);
        relocate(m, b.add_words(i), base.add_words(2 * i + 1), 1);
    }
    MergedTables { base, entries: n }
}

/// Relocates a contiguous region of `words` words into fresh pool space —
/// the data-copying optimization used by tiled numeric codes (§2.2),
/// guaranteed safe by forwarding. Returns the new base.
///
/// # Panics
///
/// Panics on heap exhaustion or forwarding cycles.
pub fn copy_region(m: &mut Machine, src: Addr, words: u64, pool: &mut Pool) -> Addr {
    let tgt = m.pool_alloc(pool, words * 8);
    relocate(m, src, tgt, words);
    tgt
}

/// Data coloring (§2.2): relocates each `(addr, words, color)` object into
/// the pool for its color, so objects of different colors live in disjoint
/// regions and cannot conflict in the cache. Returns the new addresses.
///
/// # Panics
///
/// Panics if an object names a color with no pool, or on heap exhaustion.
pub fn color_relocate(
    m: &mut Machine,
    objects: &[(Addr, u64, usize)],
    pools: &mut [Pool],
) -> Vec<Addr> {
    objects
        .iter()
        .map(|&(src, words, color)| {
            let pool = &mut pools[color];
            let tgt = m.pool_alloc(pool, words * 8);
            relocate(m, src, tgt, words);
            tgt
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    #[test]
    fn merged_tables_interleave() {
        let mut m = Machine::new(SimConfig::default());
        let n = 16;
        let a = m.malloc(n * 8);
        let b = m.malloc(n * 8);
        for i in 0..n {
            m.store_word(a.add_words(i), 100 + i);
            m.store_word(b.add_words(i), 200 + i);
        }
        let mut pool = m.new_pool();
        let t = merge_tables(&mut m, a, b, n, &mut pool);
        for i in 0..n {
            assert_eq!(m.load_word(t.a_entry(i)), 100 + i);
            assert_eq!(m.load_word(t.b_entry(i)), 200 + i);
            assert_eq!(t.b_entry(i).0 - t.a_entry(i).0, 8, "adjacent");
        }
        // Stale accesses through the old tables forward correctly.
        assert_eq!(m.load_word(a.add_words(3)), 103);
        assert_eq!(m.load_word(b.add_words(7)), 207);
    }

    #[test]
    fn copy_region_roundtrip() {
        let mut m = Machine::new(SimConfig::default());
        let src = m.malloc(64);
        for i in 0..8 {
            m.store_word(src.add_words(i), i * i);
        }
        let mut pool = m.new_pool();
        let tgt = copy_region(&mut m, src, 8, &mut pool);
        for i in 0..8 {
            assert_eq!(m.load_word(tgt.add_words(i)), i * i);
            assert_eq!(m.load_word(src.add_words(i)), i * i, "old forwards");
        }
    }

    #[test]
    fn color_relocate_separates_regions() {
        let mut m = Machine::new(SimConfig::default());
        let objs: Vec<(Addr, u64, usize)> = (0..6)
            .map(|i| {
                let a = m.malloc(16);
                m.store_word(a, i);
                (a, 2, (i % 2) as usize)
            })
            .collect();
        let mut pools = vec![m.new_pool(), m.new_pool()];
        let new = color_relocate(&mut m, &objs, &mut pools);
        for (i, &na) in new.iter().enumerate() {
            assert_eq!(m.load_word(na), i as u64);
        }
        // Same-color objects are contiguous; colors live in separate slabs.
        assert_eq!(new[2].0 - new[0].0, 16);
        assert_eq!(new[3].0 - new[1].0, 16);
        assert!(new[1].0.abs_diff(new[0].0) >= 16);
    }
}
