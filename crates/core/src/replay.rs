//! Trace-driven replay: re-price a recorded reference stream under a
//! different machine configuration without re-running the application.
//!
//! The recorded trace carries each reference's address dependence as the
//! *cycle* at which its address became available. Replay reconstructs the
//! dataflow by remembering, for every recorded completion cycle, the token
//! of the corresponding replayed reference: a later reference whose
//! `dep_cycle` matches a recorded completion is chained behind the
//! replayed one. Pointer-chasing serialization therefore survives the
//! round trip, while independent references stay independent.
//!
//! Replay drives the *final* addresses of the original run, so forwarding
//! walks are not re-simulated (their outcome is part of the recorded
//! layout); use a full application run to study forwarding itself.

use crate::config::SimConfig;
use crate::fault::MachineFault;
use crate::machine::Machine;
use crate::stats::RunStats;
use crate::trace::{TraceKind, TraceRecord};
use memfwd_cpu::Token;
use std::collections::HashMap;

/// Replays a recorded reference stream on a fresh machine built from
/// `cfg`, returning its statistics.
///
/// # Example
///
/// ```
/// use memfwd::{replay_trace, Machine, SimConfig};
///
/// // Record a little pointer chase...
/// let mut m = Machine::new(SimConfig::default());
/// let a = m.malloc(4096);
/// let b = m.malloc(4096);
/// m.store_word(a, b.0);
/// m.enable_trace(1024);
/// let (v, t) = m.load_word_dep(a, memfwd::Token::ready());
/// let _ = m.load_word_dep(memfwd::Addr(v), t);
/// let (trace, _) = m.take_trace();
///
/// // ...and re-price it with a slower memory.
/// let mut slow = SimConfig::default();
/// slow.hierarchy.mem_latency = 300;
/// let fast = replay_trace(&trace, SimConfig::default());
/// let slowed = replay_trace(&trace, slow);
/// assert!(slowed.cycles() > fast.cycles());
/// ```
pub fn replay_trace(records: &[TraceRecord], cfg: SimConfig) -> RunStats {
    try_replay_trace(records, cfg).unwrap_or_else(|fault| {
        crate::fault::record_last_fault(fault);
        panic!("{fault}");
    })
}

/// Fallible twin of [`replay_trace`]: a trace whose recorded addresses
/// fault under `cfg` (null, misaligned, or corrupted into a forwarding
/// pathology) yields a typed [`MachineFault`] instead of a panic.
///
/// # Errors
///
/// Whatever fault the replayed reference stream raises — the same set a
/// live run's [`Machine::try_load`]/[`Machine::try_store`] can produce.
pub fn try_replay_trace(records: &[TraceRecord], cfg: SimConfig) -> Result<RunStats, MachineFault> {
    let mut m = Machine::new(cfg);
    // recorded completion cycle -> replayed completion token
    let mut by_completion: HashMap<u64, Token> = HashMap::new();
    for r in records {
        let dep = by_completion
            .get(&r.dep_cycle)
            .copied()
            .unwrap_or_else(Token::ready);
        let tok = match r.kind {
            TraceKind::Load => m.try_load_dep(r.final_addr, 8, dep)?.1,
            TraceKind::Store => m.try_store_dep(r.final_addr, 8, 0, dep)?,
        };
        by_completion.insert(r.complete_cycle, tok);
    }
    Ok(m.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use memfwd_tagmem::Addr;

    /// Records `n` loads: dependent (a chase) or independent (a sweep).
    fn record(n: u64, dependent: bool) -> Vec<TraceRecord> {
        let mut m = Machine::new(SimConfig::default());
        let blocks: Vec<Addr> = (0..n).map(|_| m.malloc(4096)).collect();
        for w in blocks.windows(2) {
            m.store_word(w[0], w[1].0);
        }
        m.enable_trace(1 << 16);
        let mut tok = Token::ready();
        for &b in &blocks {
            if dependent {
                let (v, t) = m.load_word_dep(b, tok);
                tok = t;
                let _ = v;
            } else {
                m.load_word(b);
            }
        }
        m.take_trace().0
    }

    #[test]
    fn replay_preserves_dataflow_serialization() {
        let dep = replay_trace(&record(64, true), SimConfig::default());
        let indep = replay_trace(&record(64, false), SimConfig::default());
        assert!(
            dep.cycles() > indep.cycles() * 3,
            "dependent {} vs independent {}",
            dep.cycles(),
            indep.cycles()
        );
    }

    #[test]
    fn replay_cycles_track_recorded_run() {
        // Replaying the dependent chase under the SAME config lands close
        // to the recorded chase cost (the replay omits the build phase).
        let mut m = Machine::new(SimConfig::default());
        let blocks: Vec<Addr> = (0..64).map(|_| m.malloc(4096)).collect();
        for w in blocks.windows(2) {
            // Functional pokes keep the caches cold, like the replay's.
            m.poke_word(w[0], w[1].0);
        }
        let before = m.now();
        m.enable_trace(1 << 16);
        let mut tok = Token::ready();
        for &b in &blocks {
            let (_, t) = m.load_word_dep(b, tok);
            tok = t;
        }
        let chase_cycles = tok.cycle() - before;
        let (trace, _) = m.take_trace();
        let replayed = replay_trace(&trace, SimConfig::default());
        let ratio = replayed.cycles() as f64 / chase_cycles as f64;
        assert!(
            (0.7..1.3).contains(&ratio),
            "replay {} vs recorded chase {chase_cycles} (ratio {ratio:.2})",
            replayed.cycles()
        );
    }

    #[test]
    fn replay_reacts_to_machine_parameters() {
        let trace = record(64, false);
        let wide = replay_trace(&trace, SimConfig::default().with_line_bytes(128));
        let narrow = replay_trace(&trace, SimConfig::default());
        // The sweep touches page-distant lines: line size cannot reduce the
        // miss count, but a slower memory must show through.
        let mut slow_cfg = SimConfig::default();
        slow_cfg.hierarchy.mem_latency = 500;
        let slow = replay_trace(&trace, slow_cfg);
        assert!(slow.cycles() > narrow.cycles());
        assert_eq!(wide.cache.loads.full_misses, narrow.cache.loads.full_misses);
    }

    #[test]
    fn empty_trace_is_a_noop() {
        let s = replay_trace(&[], SimConfig::default());
        assert_eq!(s.fwd.loads, 0);
        assert_eq!(s.cycles(), 0);
    }

    #[test]
    fn try_replay_matches_replay_on_clean_traces() {
        let trace = record(32, true);
        let infallible = replay_trace(&trace, SimConfig::default());
        let fallible = try_replay_trace(&trace, SimConfig::default()).expect("clean trace");
        assert_eq!(infallible, fallible);
    }

    #[test]
    fn try_replay_reports_corrupted_records_as_typed_faults() {
        let mut trace = record(8, false);
        trace[3].final_addr = Addr::NULL;
        assert!(matches!(
            try_replay_trace(&trace, SimConfig::default()),
            Err(MachineFault::NullDeref { is_store: false })
        ));
        let mut trace = record(8, false);
        trace[5].final_addr = Addr(trace[5].final_addr.0 + 1);
        assert!(matches!(
            try_replay_trace(&trace, SimConfig::default()),
            Err(MachineFault::Misaligned { .. })
        ));
    }
}
