//! Final-address pointer comparison (paper §2.1 / §3.3).
//!
//! With forwarding, two pointers with distinct initial addresses may refer
//! to the same object. The compiler therefore replaces pointer comparisons
//! that could involve relocated objects with explicit code that looks up
//! and compares *final* addresses. These functions are that compiler-
//! generated sequence, with its instruction cost charged to the machine —
//! the software overhead the paper includes in its results.

use crate::machine::Machine;
use memfwd_cpu::Token;
use memfwd_tagmem::Addr;

/// Computes the final address of `a` in software, via `Read_FBit` and
/// `Unforwarded_Read` instructions (all costed).
///
/// # Panics
///
/// Panics if the forwarding chain is cyclic.
pub fn final_address(m: &mut Machine, a: Addr) -> Addr {
    if a.is_null() {
        return a;
    }
    if m.config().perfect_forwarding {
        // Under the Perf bound every pointer already holds its target's
        // final address, so the comparison needs no chain walk.
        m.compute(1);
        return memfwd_tagmem::resolve_unbounded(m.mem(), a)
            .expect("forwarding cycle during pointer comparison")
            .final_addr;
    }
    let mut cur = a;
    let mut tok = Token::ready();
    let mut guard = 0u32;
    loop {
        let (fbit, t1) = m.read_fbit_dep(cur, tok);
        m.compute(1); // branch
        if !fbit {
            return cur;
        }
        let (val, _, t2) = m.unforwarded_read_dep(cur, t1);
        cur = Addr(val) + cur.word_offset();
        tok = t2;
        guard += 1;
        assert!(
            guard < 1 << 16,
            "forwarding cycle during pointer comparison"
        );
    }
}

/// Compares two pointers by final address — the semantics-preserving
/// replacement for `p == q` on pointers that may reference relocated
/// objects.
pub fn ptr_eq(m: &mut Machine, a: Addr, b: Addr) -> bool {
    m.note_ptr_compare();
    m.compute(1); // raw comparison first: equal initial addresses always
    if a == b {
        // share a final address, so the chain walk is skipped.
        return true;
    }
    let fa = final_address(m, a);
    let fb = final_address(m, b);
    m.compute(1); // the comparison itself
    fa == fb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::reloc::relocate;

    #[test]
    fn distinct_initials_same_final() {
        let mut m = Machine::new(SimConfig::default());
        let old = m.malloc(8);
        let new = m.malloc(8);
        m.store_word(old, 5);
        relocate(&mut m, old, new, 1);
        assert!(ptr_eq(&mut m, old, new), "same object after relocation");
        assert_eq!(final_address(&mut m, old), new);
        let s = m.finish();
        assert_eq!(s.fwd.ptr_compares, 1);
        assert!(s.fwd.fbit_reads >= 2);
    }

    #[test]
    fn different_objects_stay_different() {
        let mut m = Machine::new(SimConfig::default());
        let a = m.malloc(8);
        let b = m.malloc(8);
        assert!(!ptr_eq(&mut m, a, b));
        assert!(ptr_eq(&mut m, a, a));
    }

    #[test]
    fn null_compares() {
        let mut m = Machine::new(SimConfig::default());
        let a = m.malloc(8);
        assert!(!ptr_eq(&mut m, a, Addr::NULL));
        assert!(ptr_eq(&mut m, Addr::NULL, Addr::NULL));
    }

    #[test]
    fn interior_pointers_compare_by_offset() {
        let mut m = Machine::new(SimConfig::default());
        let old = m.malloc(16);
        let new = m.malloc(16);
        relocate(&mut m, old, new, 2);
        assert!(ptr_eq(&mut m, old + 8, new + 8));
        assert!(!ptr_eq(&mut m, old + 8, new));
    }
}
