//! Simulation configuration.

use crate::inject::InjectConfig;
use crate::paging::PagingConfig;
use memfwd_cache::HierarchyConfig;
use memfwd_cpu::PipelineConfig;
use memfwd_tagmem::{Addr, AllocPolicy, DEFAULT_HOP_LIMIT};

/// Complete configuration of the simulated machine.
///
/// The defaults model the paper's evaluation platform: a 4-way out-of-order
/// superscalar with a two-level cache hierarchy, data-dependence
/// speculation enabled, and forwarding treated as an exception. These are
/// the values printed by the Table 2 bench harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Out-of-order pipeline parameters.
    pub pipeline: PipelineConfig,
    /// Cache hierarchy parameters.
    pub hierarchy: HierarchyConfig,
    /// Forwarding hops before the hardware raises the cycle-check exception
    /// (paper §3.2, "Handling Forwarding Cycles").
    pub hop_limit: u32,
    /// Extra cycles charged per forwarding hop, modelling the
    /// exception-style relaunch of the access.
    pub fwd_hop_penalty: u64,
    /// Cycles charged when a user-level trap fires on a forwarded access
    /// (paper §3.2, "Providing User-Level Traps Upon Forwarding").
    pub trap_penalty: u64,
    /// Cycles charged for the accurate software cycle check triggered when
    /// a chain exceeds `hop_limit` hops.
    pub cycle_check_penalty: u64,
    /// Perfect forwarding (the `Perf` bound of Fig. 10): references to
    /// relocated objects behave as if every pointer had been updated — no
    /// hop latency and no cache pollution from old locations.
    pub perfect_forwarding: bool,
    /// Data-dependence speculation (§3.2). When disabled, every load waits
    /// for all earlier stores' final addresses to resolve.
    pub dependence_speculation: bool,
    /// Instruction cost charged to `malloc`.
    pub malloc_cost: u64,
    /// Instruction cost charged to `free` (before chain traversal).
    pub free_cost: u64,
    /// Base of the simulated heap.
    pub heap_base: Addr,
    /// Capacity of the simulated heap in bytes.
    pub heap_capacity: u64,
    /// Slab size for relocation pools.
    pub pool_slab_bytes: u64,
    /// Heap placement policy (§4 models a first-fit C malloc; the
    /// size-class policy approximates a modern segregated allocator).
    pub alloc_policy: AllocPolicy,
    /// Optional out-of-core paging layer (§2.2): a fixed resident set of
    /// pages with a disk-class fault penalty.
    pub paging: Option<PagingConfig>,
    /// Optional store buffer: stores graduate on admission to a buffer of
    /// this many entries instead of waiting for the cache (ablation knob;
    /// `None` reproduces the paper's store-stall behaviour).
    pub store_buffer_entries: Option<usize>,
    /// Optional hard ceiling on forwarding hops per access. Unlike
    /// [`SimConfig::hop_limit`] — which only decides when the accurate
    /// cycle check engages — exceeding this budget raises a typed
    /// [`crate::MachineFault::HopLimitExceeded`] even on an acyclic chain,
    /// modelling a machine that refuses pathological chains outright.
    /// `None` (the default) accepts chains of any finite length.
    pub hard_hop_budget: Option<u32>,
    /// Optional deterministic fault-injection campaign (see
    /// [`crate::inject`]). `None` disables injection entirely.
    pub fault_injection: Option<InjectConfig>,
    /// Checkpoint cadence for crash-safe runs: the application harness
    /// snapshots the machine every this-many demand references (`None`
    /// disables checkpointing). Consumed by `memfwd_apps`' checkpoint
    /// driver; the machine itself only carries the knob so one [`SimConfig`]
    /// describes the whole run (and so the snapshot config fingerprint
    /// covers it).
    pub checkpoint_every: Option<u64>,
    /// Bounded-progress watchdog (see [`WatchdogConfig`]).
    pub watchdog: WatchdogConfig,
    /// Forces every demand reference down the fully general scalar path,
    /// disabling the streamlined unforwarded fast path. The two paths are
    /// bit-identical by construction; this escape hatch exists so the
    /// differential tests (and a suspicious user) can prove it on any run
    /// via `--scalar`.
    pub scalar_path: bool,
    /// Worker threads for the epoch-parallel execution engine
    /// (the `epoch` module). `0` (the default) disables speculation entirely:
    /// task groups handed to [`crate::Machine::run_tasks`] execute directly
    /// on the calling thread. Any value ≥ 1 runs that many speculation
    /// workers plus the committer on the calling thread; results are
    /// bit-identical at every setting.
    pub epoch_threads: usize,
    /// Shared-memory consistency model of the SMP machine (see
    /// [`MemoryModel`]). [`MemoryModel::Sc`] — the default — keeps the
    /// SMP machine bit-identical to its pre-TSO behaviour; the
    /// uniprocessor machine ignores this knob entirely.
    pub memory_model: MemoryModel,
}

/// The shared-memory consistency model of the SMP machine
/// ([`crate::SmpMachine`]; the uniprocessor machine has no visibility
/// ordering to weaken and ignores this knob).
///
/// Under [`MemoryModel::Sc`] every store becomes globally visible the
/// moment it executes — the model the SMP campaigns and the PR-4 race
/// certifier were built against, and the bit-identical default. Under
/// [`MemoryModel::Tso`] each core issues stores into a private FIFO store
/// buffer (total-store-order, the x86 model): the issuing core forwards
/// its own buffered values to later loads, while remote cores observe a
/// store only once it *drains* to coherent memory. Fences, releases,
/// per-word locks, and barriers are the drain points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemoryModel {
    /// Sequential consistency: stores are globally visible at execution.
    #[default]
    Sc,
    /// Total store order: per-core FIFO store buffers with own-store
    /// forwarding; remote visibility is deferred to the drain.
    Tso,
}

impl MemoryModel {
    /// The stable lowercase name (`"sc"` / `"tso"`), as accepted by
    /// [`MemoryModel::from_name`] and the `--memory-model` CLI flag.
    pub fn as_str(self) -> &'static str {
        match self {
            MemoryModel::Sc => "sc",
            MemoryModel::Tso => "tso",
        }
    }

    /// Parses a model name (case-insensitive).
    pub fn from_name(s: &str) -> Option<MemoryModel> {
        match s.to_ascii_lowercase().as_str() {
            "sc" => Some(MemoryModel::Sc),
            "tso" => Some(MemoryModel::Tso),
            _ => None,
        }
    }
}

impl std::fmt::Display for MemoryModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Bounded-progress watchdog: converts silent livelock into typed faults.
///
/// Forwarding pathologies that are not cycles — ever-growing acyclic
/// chains, repeated walk storms over a corrupted heap — can stall a run
/// indefinitely without tripping the cycle check. The watchdog bounds the
/// damage: a reference whose graduation stalls longer than
/// [`WatchdogConfig::stall_cycles`] raises
/// [`crate::MachineFault::NoProgress`], and a burst of forwarding-walk hops
/// exceeding [`WatchdogConfig::walk_hop_budget`] within a sliding window of
/// [`WatchdogConfig::walk_window`] references raises
/// [`crate::MachineFault::WalkStorm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WatchdogConfig {
    /// Maximum cycles a single demand reference may take from issue to
    /// completion before [`crate::MachineFault::NoProgress`] is raised.
    /// `None` (the default) disables the stall check.
    pub stall_cycles: Option<u64>,
    /// Length, in demand references, of the sliding window over which
    /// forwarding-walk hops are summed for the storm check.
    pub walk_window: u64,
    /// Maximum total forwarding hops tolerated within the window before
    /// [`crate::MachineFault::WalkStorm`] is raised. `None` (the default)
    /// disables the storm check.
    pub walk_hop_budget: Option<u64>,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            stall_cycles: None,
            walk_window: 1024,
            walk_hop_budget: None,
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            pipeline: PipelineConfig::default(),
            hierarchy: HierarchyConfig::default(),
            hop_limit: DEFAULT_HOP_LIMIT,
            fwd_hop_penalty: 4,
            trap_penalty: 40,
            cycle_check_penalty: 200,
            perfect_forwarding: false,
            dependence_speculation: true,
            malloc_cost: 30,
            free_cost: 20,
            heap_base: Addr(0x10_000),
            heap_capacity: 1 << 31,
            pool_slab_bytes: 256 * 1024,
            alloc_policy: AllocPolicy::FirstFit,
            paging: None,
            store_buffer_entries: None,
            hard_hop_budget: None,
            fault_injection: None,
            checkpoint_every: None,
            watchdog: WatchdogConfig::default(),
            scalar_path: false,
            epoch_threads: 0,
            memory_model: MemoryModel::Sc,
        }
    }
}

impl SimConfig {
    /// Returns a copy with a different cache line size (the Fig. 5 sweep).
    pub fn with_line_bytes(mut self, line_bytes: u64) -> Self {
        self.hierarchy = self.hierarchy.with_line_bytes(line_bytes);
        self
    }

    /// Returns a copy with perfect forwarding enabled (Fig. 10 `Perf`).
    pub fn with_perfect_forwarding(mut self) -> Self {
        self.perfect_forwarding = true;
        self
    }

    /// Returns a copy with the given fault-injection campaign enabled.
    pub fn with_fault_injection(mut self, inject: InjectConfig) -> Self {
        self.fault_injection = Some(inject);
        self
    }

    /// Returns a copy with the given progress-watchdog configuration.
    pub fn with_watchdog(mut self, watchdog: WatchdogConfig) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Returns a copy checkpointing every `refs` demand references.
    pub fn with_checkpoint_every(mut self, refs: u64) -> Self {
        self.checkpoint_every = Some(refs);
        self
    }

    /// Returns a copy that forces the fully general scalar demand path
    /// (the `--scalar` escape hatch used to prove fast-path bit-identity).
    pub fn with_scalar_path(mut self) -> Self {
        self.scalar_path = true;
        self
    }

    /// Returns a copy with `threads` epoch-engine speculation workers
    /// (`0` disables the engine; see [`SimConfig::epoch_threads`]).
    pub fn with_epoch_threads(mut self, threads: usize) -> Self {
        self.epoch_threads = threads;
        self
    }

    /// Returns a copy running the SMP machine under `model` (see
    /// [`MemoryModel`]; the default is [`MemoryModel::Sc`]).
    pub fn with_memory_model(mut self, model: MemoryModel) -> Self {
        self.memory_model = model;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_coherent() {
        let c = SimConfig::default();
        assert!(c.dependence_speculation);
        assert!(!c.perfect_forwarding);
        assert!(c.heap_base.is_aligned(8));
        assert!(c.pool_slab_bytes <= c.heap_capacity);
        assert_eq!(c.hop_limit, DEFAULT_HOP_LIMIT);
        assert!(c.hard_hop_budget.is_none());
        assert!(c.fault_injection.is_none());
        assert_eq!(c.epoch_threads, 0, "speculation is opt-in");
        assert_eq!(c.memory_model, MemoryModel::Sc, "SC is the default");
    }

    #[test]
    fn memory_model_names_round_trip() {
        for m in [MemoryModel::Sc, MemoryModel::Tso] {
            assert_eq!(MemoryModel::from_name(m.as_str()), Some(m));
            assert_eq!(MemoryModel::from_name(&m.as_str().to_uppercase()), Some(m));
        }
        assert_eq!(MemoryModel::from_name("arm"), None);
        assert_eq!(
            SimConfig::default()
                .with_memory_model(MemoryModel::Tso)
                .memory_model,
            MemoryModel::Tso
        );
    }

    #[test]
    fn builders() {
        let c = SimConfig::default()
            .with_line_bytes(128)
            .with_perfect_forwarding();
        assert_eq!(c.hierarchy.line_bytes, 128);
        assert!(c.perfect_forwarding);
    }
}
