//! Property-based checks of the cache timing model against small reference
//! models.

use memfwd_cache::{AccessKind, CacheLevel, CacheLevelConfig, Hierarchy, HierarchyConfig};
use proptest::prelude::*;
use std::collections::HashMap;

fn tiny_hierarchy() -> Hierarchy {
    Hierarchy::new(HierarchyConfig {
        line_bytes: 32,
        l1: CacheLevelConfig {
            size_bytes: 512,
            assoc: 2,
            hit_latency: 1,
        },
        l2: CacheLevelConfig {
            size_bytes: 2048,
            assoc: 4,
            hit_latency: 10,
        },
        mem_latency: 75,
        l1_l2_bytes_per_cycle: 16,
        mem_bytes_per_cycle: 8,
        mshrs: 4,
        next_line_prefetch: false,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every access is classified exactly once, completion times never
    /// precede the request, and totals are conserved.
    #[test]
    fn hierarchy_conservation(stream in proptest::collection::vec((0u64..64, any::<bool>(), 1u64..40), 1..200)) {
        let mut h = tiny_hierarchy();
        let mut now = 0u64;
        let mut loads = 0u64;
        let mut stores = 0u64;
        for (lineish, is_store, gap) in stream {
            let addr = lineish * 32;
            let kind = if is_store { AccessKind::Store } else { AccessKind::Load };
            let acc = h.access(now, addr, kind);
            prop_assert!(acc.complete_at > now, "completion before request");
            if is_store { stores += 1 } else { loads += 1 }
            now += gap;
        }
        let s = h.stats();
        prop_assert_eq!(s.loads.total(), loads);
        prop_assert_eq!(s.stores.total(), stores);
        prop_assert_eq!(s.l2_hits + s.l2_misses,
            s.loads.full_misses + s.stores.full_misses);
    }

    /// Re-accessing a line after its fill completed is always an L1 hit
    /// (no spurious invalidation in the uniprocessor hierarchy).
    #[test]
    fn filled_lines_stay_resident_until_evicted(lines in proptest::collection::vec(0u64..8, 1..30)) {
        // 8 distinct lines fit in the 16-line L1 (512B / 32B).
        let mut h = tiny_hierarchy();
        let mut now = 0;
        let mut seen: HashMap<u64, bool> = HashMap::new();
        for l in lines {
            let acc = h.access(now, l * 32, AccessKind::Load);
            if seen.contains_key(&l) {
                prop_assert!(!acc.l1_miss(), "line {l} should be resident");
            }
            seen.insert(l, true);
            now = acc.complete_at + 1;
        }
    }

    /// The standalone cache level matches a reference true-LRU model.
    #[test]
    fn cache_level_matches_reference_lru(stream in proptest::collection::vec(0u64..12, 1..300)) {
        let mut level = CacheLevel::new(
            CacheLevelConfig { size_bytes: 256, assoc: 2, hit_latency: 1 },
            32,
        ); // 4 sets x 2 ways
        // Reference: per-set vector of (line, stamp).
        let mut model: HashMap<u64, Vec<(u64, u64)>> = HashMap::new();
        let mut stamp = 0u64;
        for line in stream {
            stamp += 1;
            let set = line % 4;
            let ways = model.entry(set).or_default();
            let model_hit = ways.iter().any(|&(l, _)| l == line);
            let hit = level.lookup(line);
            prop_assert_eq!(hit, model_hit, "line {} divergence", line);
            if model_hit {
                ways.iter_mut().find(|(l, _)| *l == line).unwrap().1 = stamp;
            } else {
                level.fill(line, false);
                if ways.len() == 2 {
                    let victim = ways.iter().enumerate().min_by_key(|(_, &(_, s))| s).unwrap().0;
                    ways.swap_remove(victim);
                }
                ways.push((line, stamp));
            }
        }
        // Residency agrees at the end.
        for set in 0..4u64 {
            for way in model.get(&set).into_iter().flatten() {
                prop_assert!(level.probe(way.0));
            }
        }
    }

    /// Partial misses only happen while a fill is genuinely outstanding:
    /// with accesses spaced beyond the worst-case fill latency, no partial
    /// misses can occur.
    #[test]
    fn no_partial_misses_when_fully_spaced(lines in proptest::collection::vec(0u64..100, 1..60)) {
        let mut h = tiny_hierarchy();
        let mut now = 0;
        for l in lines {
            let acc = h.access(now, l * 32, AccessKind::Load);
            now = acc.complete_at + 500;
        }
        let s = h.stats();
        prop_assert_eq!(s.loads.partial_misses, 0);
    }

    /// Bandwidth accounting: every full miss moves at least one line over
    /// the L1<->L2 bus, and memory traffic never exceeds L1<->L2 traffic
    /// plus writeback slack in this write-back hierarchy.
    #[test]
    fn bandwidth_accounting(lines in proptest::collection::vec(0u64..256, 1..200)) {
        let mut h = tiny_hierarchy();
        let mut now = 0;
        for l in lines {
            let acc = h.access(now, l * 32, AccessKind::Load);
            now = acc.complete_at + 1;
        }
        let s = h.stats();
        let full = s.loads.full_misses;
        prop_assert!(h.bytes_l1_l2() >= full * 32);
        prop_assert!(h.bytes_l2_mem() >= s.l2_misses * 32);
        prop_assert_eq!(h.bytes_l1_l2(), (full + s.l1_writebacks) * 32);
    }
}
