//! Statistics gathered by the hierarchy — the raw material of the paper's
//! Figures 6(a) and 6(b).

/// Hit/miss counts for one access class (loads or stores).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassCounts {
    /// Accesses that hit in the L1 data cache.
    pub l1_hits: u64,
    /// Misses that combined with an outstanding miss to the same line
    /// ("partial misses": they do not necessarily suffer the full latency).
    pub partial_misses: u64,
    /// Misses that initiated a new fill ("full misses").
    pub full_misses: u64,
}

impl ClassCounts {
    /// Total accesses in this class.
    pub fn total(&self) -> u64 {
        self.l1_hits + self.partial_misses + self.full_misses
    }

    /// Total misses (partial + full) in this class.
    pub fn misses(&self) -> u64 {
        self.partial_misses + self.full_misses
    }
}

/// Aggregate statistics for a [`crate::Hierarchy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Load accesses.
    pub loads: ClassCounts,
    /// Store accesses.
    pub stores: ClassCounts,
    /// L2 lookups that hit (full misses only reach L2).
    pub l2_hits: u64,
    /// L2 lookups that missed to memory.
    pub l2_misses: u64,
    /// Prefetches that initiated a fill.
    pub prefetches_issued: u64,
    /// Prefetches dropped because the MSHR file was full.
    pub prefetches_dropped: u64,
    /// Prefetches that found the line already resident or in flight.
    pub prefetches_redundant: u64,
    /// Dirty L1 victims written back to L2.
    pub l1_writebacks: u64,
    /// Dirty L2 victims written back to memory.
    pub l2_writebacks: u64,
}

impl CacheStats {
    /// Bytes moved over the L1↔L2 bus (fig. 6(b), bottom section).
    /// Stored separately on the buses; combined by the hierarchy accessor.
    pub fn miss_ratio_loads(&self) -> f64 {
        let t = self.loads.total();
        if t == 0 {
            0.0
        } else {
            self.loads.misses() as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_counts_totals() {
        let c = ClassCounts {
            l1_hits: 10,
            partial_misses: 3,
            full_misses: 7,
        };
        assert_eq!(c.total(), 20);
        assert_eq!(c.misses(), 10);
    }

    #[test]
    fn miss_ratio() {
        let mut s = CacheStats::default();
        assert_eq!(s.miss_ratio_loads(), 0.0);
        s.loads = ClassCounts {
            l1_hits: 8,
            partial_misses: 1,
            full_misses: 1,
        };
        assert!((s.miss_ratio_loads() - 0.2).abs() < 1e-12);
    }
}
