//! A true-LRU cache set.

use memfwd_tagmem::{SnapCodecError, SnapDecoder, SnapEncoder};

/// One way of a set.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Way {
    pub tag: u64,
    pub dirty: bool,
    pub last_used: u64,
}

/// A single set with true-LRU replacement.
#[derive(Debug, Clone, Default)]
pub(crate) struct LruSet {
    ways: Vec<Way>,
}

/// Result of inserting a line into a full set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Evicted {
    pub tag: u64,
    pub dirty: bool,
}

impl LruSet {
    /// Looks up `tag`; on hit, refreshes recency (at logical time `seq`) and
    /// returns `true`.
    #[inline]
    pub fn touch(&mut self, tag: u64, seq: u64) -> bool {
        if let Some(w) = self.ways.iter_mut().find(|w| w.tag == tag) {
            w.last_used = seq;
            true
        } else {
            false
        }
    }

    /// Presence check without recency update.
    #[inline]
    pub fn contains(&self, tag: u64) -> bool {
        self.ways.iter().any(|w| w.tag == tag)
    }

    /// [`LruSet::touch`] and [`LruSet::mark_dirty`] in a single way scan —
    /// the store-hit path. State-identical to calling them back to back.
    #[inline]
    pub fn touch_dirty(&mut self, tag: u64, seq: u64) -> bool {
        if let Some(w) = self.ways.iter_mut().find(|w| w.tag == tag) {
            w.last_used = seq;
            w.dirty = true;
            true
        } else {
            false
        }
    }

    /// Marks `tag` dirty if present; returns whether it was present.
    #[inline]
    pub fn mark_dirty(&mut self, tag: u64) -> bool {
        if let Some(w) = self.ways.iter_mut().find(|w| w.tag == tag) {
            w.dirty = true;
            true
        } else {
            false
        }
    }

    /// Inserts `tag` (which must not be present), evicting the LRU way if
    /// the set already holds `assoc` lines.
    pub fn insert(&mut self, tag: u64, dirty: bool, seq: u64, assoc: u32) -> Option<Evicted> {
        debug_assert!(!self.contains(tag), "insert of resident line");
        let evicted = if self.ways.len() == assoc as usize {
            let (idx, _) = self
                .ways
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.last_used)
                .expect("non-empty set");
            let victim = self.ways.swap_remove(idx);
            Some(Evicted {
                tag: victim.tag,
                dirty: victim.dirty,
            })
        } else {
            None
        };
        self.ways.push(Way {
            tag,
            dirty,
            last_used: seq,
        });
        evicted
    }

    /// Removes `tag` if present, returning whether it was dirty.
    pub fn invalidate(&mut self, tag: u64) -> Option<bool> {
        let idx = self.ways.iter().position(|w| w.tag == tag)?;
        Some(self.ways.swap_remove(idx).dirty)
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.ways.len()
    }

    /// Serializes the set. Ways are written in stored order — not sorted —
    /// because `swap_remove` makes the physical order part of the eviction
    /// behaviour; a restored set must evict identically.
    pub fn snapshot_encode(&self, enc: &mut SnapEncoder) {
        enc.seq(self.ways.iter(), |e, w| {
            e.u64(w.tag);
            e.bool(w.dirty);
            e.u64(w.last_used);
        });
    }

    /// Rebuilds a set written by [`LruSet::snapshot_encode`].
    pub fn snapshot_decode(dec: &mut SnapDecoder<'_>) -> Result<LruSet, SnapCodecError> {
        let n = dec.seq_len(17)?;
        let mut ways = Vec::with_capacity(n);
        for _ in 0..n {
            ways.push(Way {
                tag: dec.u64()?,
                dirty: dec.bool()?,
                last_used: dec.u64()?,
            });
        }
        Ok(LruSet { ways })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_hit_and_miss() {
        let mut s = LruSet::default();
        assert!(!s.touch(1, 0));
        s.insert(1, false, 0, 2);
        assert!(s.touch(1, 1));
        assert!(s.contains(1));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut s = LruSet::default();
        s.insert(1, false, 0, 2);
        s.insert(2, false, 1, 2);
        s.touch(1, 2); // 2 is now LRU
        let ev = s.insert(3, false, 3, 2).unwrap();
        assert_eq!(ev.tag, 2);
        assert!(s.contains(1) && s.contains(3));
    }

    #[test]
    fn dirty_propagates_to_eviction() {
        let mut s = LruSet::default();
        s.insert(1, false, 0, 1);
        assert!(s.mark_dirty(1));
        let ev = s.insert(2, false, 1, 1).unwrap();
        assert!(ev.dirty);
        assert!(!s.mark_dirty(42));
    }

    #[test]
    fn invalidate() {
        let mut s = LruSet::default();
        s.insert(1, true, 0, 2);
        assert_eq!(s.invalidate(1), Some(true));
        assert_eq!(s.invalidate(1), None);
        assert_eq!(s.len(), 0);
    }
}
