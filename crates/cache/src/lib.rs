//! Cache hierarchy timing model for the Memory Forwarding reproduction.
//!
//! Models a two-level hierarchy — split L1 data cache, unified L2, main
//! memory — with non-blocking misses (MSHRs), occupancy-based bandwidth on
//! the L1↔L2 and L2↔memory buses, write-back write-allocate policy, and
//! block prefetching. It is a *timing-only* model: data contents live in
//! `memfwd-tagmem`.
//!
//! The statistics it gathers are exactly those the paper's evaluation
//! reports: D-cache misses split into *partial* misses (which combine with
//! an outstanding miss to the same line) and *full* misses (Fig. 6(a)), and
//! bytes transferred between L1↔L2 and L2↔memory (Fig. 6(b)).
//!
//! # Example
//!
//! ```
//! use memfwd_cache::{AccessKind, Hierarchy, HierarchyConfig};
//!
//! let mut h = Hierarchy::new(HierarchyConfig::default());
//! let miss = h.access(0, 0x1000, AccessKind::Load);
//! let hit = h.access(miss.complete_at, 0x1008, AccessKind::Load);
//! assert!(hit.complete_at < miss.complete_at + 5, "same line: now a hit");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod config;
mod hierarchy;
mod level;
mod lru;
mod mshr;
mod stats;

pub use bus::Bus;
pub use config::{CacheLevelConfig, HierarchyConfig};
pub use hierarchy::{Access, AccessKind, Hierarchy, Outcome};
pub use level::CacheLevel;
pub use mshr::MshrFile;
pub use stats::{CacheStats, ClassCounts};
