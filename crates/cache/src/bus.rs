//! Occupancy-based bus bandwidth model.

/// A bus with fixed bandwidth and a single outstanding-transfer queue.
///
/// Transfers are serialized: a transfer requested while the bus is busy
/// starts when the bus frees up. Total bytes moved are recorded — this is
/// the quantity reported in the paper's Fig. 6(b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bus {
    bytes_per_cycle: u64,
    free_at: u64,
    total_bytes: u64,
}

impl Bus {
    /// Creates a bus moving `bytes_per_cycle` bytes each cycle.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is zero.
    pub fn new(bytes_per_cycle: u64) -> Bus {
        assert!(bytes_per_cycle > 0, "bus bandwidth must be positive");
        Bus {
            bytes_per_cycle,
            free_at: 0,
            total_bytes: 0,
        }
    }

    /// Schedules a transfer of `bytes` requested at cycle `now`; returns the
    /// cycle at which the transfer completes.
    pub fn transfer(&mut self, now: u64, bytes: u64) -> u64 {
        let start = now.max(self.free_at);
        let done = start + bytes.div_ceil(self.bytes_per_cycle);
        self.free_at = done;
        self.total_bytes += bytes;
        done
    }

    /// Total bytes ever moved over this bus.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Cycle at which the bus next becomes free.
    pub fn free_at(&self) -> u64 {
        self.free_at
    }

    /// Serializes the bus state.
    pub fn snapshot_encode(&self, enc: &mut memfwd_tagmem::SnapEncoder) {
        enc.u64(self.bytes_per_cycle);
        enc.u64(self.free_at);
        enc.u64(self.total_bytes);
    }

    /// Rebuilds a bus written by [`Bus::snapshot_encode`].
    pub fn snapshot_decode(
        dec: &mut memfwd_tagmem::SnapDecoder<'_>,
    ) -> Result<Bus, memfwd_tagmem::SnapCodecError> {
        let bytes_per_cycle = dec.u64()?;
        if bytes_per_cycle == 0 {
            return Err(memfwd_tagmem::SnapCodecError::BadValue);
        }
        Ok(Bus {
            bytes_per_cycle,
            free_at: dec.u64()?,
            total_bytes: dec.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_bus_transfers_immediately() {
        let mut b = Bus::new(8);
        assert_eq!(b.transfer(100, 32), 104);
        assert_eq!(b.total_bytes(), 32);
    }

    #[test]
    fn busy_bus_serializes() {
        let mut b = Bus::new(8);
        let d1 = b.transfer(0, 64); // 0..8
        assert_eq!(d1, 8);
        let d2 = b.transfer(2, 64); // queued behind the first
        assert_eq!(d2, 16);
        assert_eq!(b.free_at(), 16);
        assert_eq!(b.total_bytes(), 128);
    }

    #[test]
    fn rounds_up_partial_cycles() {
        let mut b = Bus::new(16);
        assert_eq!(b.transfer(0, 20), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_rejected() {
        let _ = Bus::new(0);
    }
}
