//! Miss-status holding registers (MSHRs): the bookkeeping that makes the
//! caches non-blocking and defines the paper's partial/full miss split.

use memfwd_tagmem::{SnapCodecError, SnapDecoder, SnapEncoder};

/// A file of miss-status holding registers.
///
/// A miss that finds its line already in flight *combines* with the existing
/// entry — a **partial miss** in the paper's terminology — and completes when
/// that fill completes, rather than paying the full latency again.
///
/// The file holds a handful of registers (hardware MSHR files are 4–16
/// entries), stored as parallel flat arrays — one `u64` lane per field — so
/// the per-access probe and prune are chunked word scans over dense memory
/// rather than walks over an array of structs. Every query is
/// order-insensitive in its results, so outcomes are identical to the
/// map-based representation.
#[derive(Debug)]
pub struct MshrFile {
    capacity: usize,
    lines: Vec<u64>,
    fill_done: Vec<u64>,
    dirty: Vec<bool>,
}

/// Lanes per probe chunk: four `u64`s, matching the tagmem scan kernels.
const LANES: usize = 4;

impl MshrFile {
    /// Creates a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> MshrFile {
        assert!(capacity > 0, "need at least one MSHR");
        MshrFile {
            capacity,
            lines: Vec::with_capacity(capacity),
            fill_done: Vec::with_capacity(capacity),
            dirty: Vec::with_capacity(capacity),
        }
    }

    /// True when any outstanding fill completes at or before `now` — the
    /// chunked pre-check that lets [`MshrFile::prune`] skip compaction in
    /// the common nothing-expired case.
    #[inline]
    fn any_expired(&self, now: u64) -> bool {
        let mut chunks = self.fill_done.chunks_exact(LANES);
        for c in &mut chunks {
            if c[0] <= now || c[1] <= now || c[2] <= now || c[3] <= now {
                return true;
            }
        }
        chunks.remainder().iter().any(|&d| d <= now)
    }

    /// Discards entries whose fills completed at or before `now`.
    #[inline]
    pub fn prune(&mut self, now: u64) {
        if !self.any_expired(now) {
            return;
        }
        // In-place compaction preserving order across all three lanes
        // (order is not observable, but keeping it makes the state identical
        // to the historical retain-based representation).
        let mut w = 0;
        for r in 0..self.fill_done.len() {
            if self.fill_done[r] > now {
                self.lines[w] = self.lines[r];
                self.fill_done[w] = self.fill_done[r];
                self.dirty[w] = self.dirty[r];
                w += 1;
            }
        }
        self.lines.truncate(w);
        self.fill_done.truncate(w);
        self.dirty.truncate(w);
    }

    /// True when no fills are outstanding — the hierarchy's fast path skips
    /// the prune + in-flight probe entirely in that case.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Index of `line` in the file, probing the dense line lane in
    /// [`LANES`]-wide chunks.
    #[inline]
    fn probe(&self, line: u64) -> Option<usize> {
        let mut chunks = self.lines.chunks_exact(LANES);
        let mut base = 0;
        for c in &mut chunks {
            // Branch once per chunk; resolve the lane only on a hit.
            if c[0] == line || c[1] == line || c[2] == line || c[3] == line {
                for (i, &l) in c.iter().enumerate() {
                    if l == line {
                        return Some(base + i);
                    }
                }
            }
            base += LANES;
        }
        for (i, &l) in chunks.remainder().iter().enumerate() {
            if l == line {
                return Some(base + i);
            }
        }
        None
    }

    /// If `line` is in flight, returns the cycle its fill completes.
    #[inline]
    pub fn in_flight(&self, line: u64) -> Option<u64> {
        self.probe(line).map(|i| self.fill_done[i])
    }

    /// Records a store combining with an in-flight fill so the line is
    /// filled dirty.
    pub fn mark_dirty_on_fill(&mut self, line: u64) {
        if let Some(i) = self.probe(line) {
            self.dirty[i] = true;
        }
    }

    /// Whether the filled line must be inserted dirty.
    pub fn dirty_on_fill(&self, line: u64) -> bool {
        self.probe(line).map(|i| self.dirty[i]).unwrap_or(false)
    }

    /// True when every register is occupied (after pruning at `now`).
    pub fn full(&mut self, now: u64) -> bool {
        self.prune(now);
        self.lines.len() >= self.capacity
    }

    /// Earliest completion among outstanding fills, if any — the time a new
    /// miss must wait for when the file is full.
    pub fn earliest_completion(&self) -> Option<u64> {
        self.fill_done.iter().copied().min()
    }

    /// Allocates a register for `line` completing at `fill_done`.
    ///
    /// # Panics
    ///
    /// Panics if the file is full or the line is already in flight; callers
    /// must check [`MshrFile::full`] / [`MshrFile::in_flight`] first.
    pub fn allocate(&mut self, line: u64, fill_done: u64, dirty_on_fill: bool) {
        assert!(self.lines.len() < self.capacity, "MSHR file full");
        assert!(self.in_flight(line).is_none(), "line already in flight");
        self.lines.push(line);
        self.fill_done.push(fill_done);
        self.dirty.push(dirty_on_fill);
    }

    /// Number of outstanding fills.
    pub fn outstanding(&self) -> usize {
        self.lines.len()
    }

    /// Serializes the file (capacity + outstanding fills, sorted by line so
    /// the encoding is byte-stable).
    pub fn snapshot_encode(&self, enc: &mut SnapEncoder) {
        enc.usize(self.capacity);
        let mut order: Vec<usize> = (0..self.lines.len()).collect();
        order.sort_unstable_by_key(|&i| self.lines[i]);
        enc.usize(order.len());
        for i in order {
            enc.u64(self.lines[i]);
            enc.u64(self.fill_done[i]);
            enc.bool(self.dirty[i]);
        }
    }

    /// Rebuilds a file written by [`MshrFile::snapshot_encode`].
    pub fn snapshot_decode(dec: &mut SnapDecoder<'_>) -> Result<MshrFile, SnapCodecError> {
        let capacity = dec.usize()?;
        if capacity == 0 {
            return Err(SnapCodecError::BadValue);
        }
        let n = dec.seq_len(17)?;
        if n > capacity {
            return Err(SnapCodecError::BadValue);
        }
        let mut file = MshrFile::new(capacity);
        for _ in 0..n {
            let line = dec.u64()?;
            let fill_done = dec.u64()?;
            let dirty_on_fill = dec.bool()?;
            if file.in_flight(line).is_some() {
                return Err(SnapCodecError::BadValue);
            }
            file.lines.push(line);
            file.fill_done.push(fill_done);
            file.dirty.push(dirty_on_fill);
        }
        Ok(file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_combine() {
        let mut m = MshrFile::new(2);
        m.allocate(10, 100, false);
        assert_eq!(m.in_flight(10), Some(100));
        assert_eq!(m.in_flight(11), None);
        m.mark_dirty_on_fill(10);
        assert!(m.dirty_on_fill(10));
    }

    #[test]
    fn prune_releases_registers() {
        let mut m = MshrFile::new(1);
        m.allocate(1, 50, false);
        assert!(m.full(10));
        assert!(!m.full(50), "completed fill frees the register");
        assert_eq!(m.outstanding(), 0);
    }

    #[test]
    fn earliest_completion_for_stall() {
        let mut m = MshrFile::new(2);
        m.allocate(1, 80, false);
        m.allocate(2, 60, false);
        assert_eq!(m.earliest_completion(), Some(60));
    }

    #[test]
    #[should_panic(expected = "MSHR file full")]
    fn overflow_panics() {
        let mut m = MshrFile::new(1);
        m.allocate(1, 10, false);
        m.allocate(2, 10, false);
    }

    #[test]
    #[should_panic(expected = "already in flight")]
    fn duplicate_line_panics() {
        let mut m = MshrFile::new(2);
        m.allocate(1, 10, false);
        m.allocate(1, 20, false);
    }

    #[test]
    fn chunked_probe_finds_every_slot() {
        // More entries than one probe chunk, so the chunked scan and its
        // scalar tail are both exercised.
        let mut m = MshrFile::new(11);
        for i in 0..11u64 {
            m.allocate(100 + i, 1000 + i, i % 3 == 0);
        }
        for i in 0..11u64 {
            assert_eq!(m.in_flight(100 + i), Some(1000 + i), "slot {i}");
            assert_eq!(m.dirty_on_fill(100 + i), i % 3 == 0);
        }
        assert_eq!(m.in_flight(99), None);
        assert_eq!(m.earliest_completion(), Some(1000));
        // Selective prune drops exactly the expired prefix entries.
        m.prune(1004);
        assert_eq!(m.outstanding(), 6);
        assert_eq!(m.in_flight(104), None);
        assert_eq!(m.in_flight(105), Some(1005));
    }
}
