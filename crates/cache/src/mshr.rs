//! Miss-status holding registers (MSHRs): the bookkeeping that makes the
//! caches non-blocking and defines the paper's partial/full miss split.

use memfwd_tagmem::{SnapCodecError, SnapDecoder, SnapEncoder};

/// An entry for one outstanding line fill.
#[derive(Debug, Clone, Copy)]
struct Entry {
    line: u64,
    fill_done: u64,
    dirty_on_fill: bool,
}

/// A file of miss-status holding registers.
///
/// A miss that finds its line already in flight *combines* with the existing
/// entry — a **partial miss** in the paper's terminology — and completes when
/// that fill completes, rather than paying the full latency again.
///
/// The file holds a handful of registers (hardware MSHR files are 4–16
/// entries), so it is a flat array scanned linearly: the per-access prune
/// and probe touch one or two cache lines instead of sweeping hash-map
/// buckets. Every query is order-insensitive, so results are identical to
/// the map-based representation.
#[derive(Debug)]
pub struct MshrFile {
    capacity: usize,
    entries: Vec<Entry>,
}

impl MshrFile {
    /// Creates a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> MshrFile {
        assert!(capacity > 0, "need at least one MSHR");
        MshrFile {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Discards entries whose fills completed at or before `now`.
    #[inline]
    pub fn prune(&mut self, now: u64) {
        self.entries.retain(|e| e.fill_done > now);
    }

    /// True when no fills are outstanding — the hierarchy's fast path skips
    /// the prune + in-flight probe entirely in that case.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// If `line` is in flight, returns the cycle its fill completes.
    #[inline]
    pub fn in_flight(&self, line: u64) -> Option<u64> {
        self.entries
            .iter()
            .find(|e| e.line == line)
            .map(|e| e.fill_done)
    }

    /// Records a store combining with an in-flight fill so the line is
    /// filled dirty.
    pub fn mark_dirty_on_fill(&mut self, line: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.line == line) {
            e.dirty_on_fill = true;
        }
    }

    /// Whether the filled line must be inserted dirty.
    pub fn dirty_on_fill(&self, line: u64) -> bool {
        self.entries
            .iter()
            .find(|e| e.line == line)
            .map(|e| e.dirty_on_fill)
            .unwrap_or(false)
    }

    /// True when every register is occupied (after pruning at `now`).
    pub fn full(&mut self, now: u64) -> bool {
        self.prune(now);
        self.entries.len() >= self.capacity
    }

    /// Earliest completion among outstanding fills, if any — the time a new
    /// miss must wait for when the file is full.
    pub fn earliest_completion(&self) -> Option<u64> {
        self.entries.iter().map(|e| e.fill_done).min()
    }

    /// Allocates a register for `line` completing at `fill_done`.
    ///
    /// # Panics
    ///
    /// Panics if the file is full or the line is already in flight; callers
    /// must check [`MshrFile::full`] / [`MshrFile::in_flight`] first.
    pub fn allocate(&mut self, line: u64, fill_done: u64, dirty_on_fill: bool) {
        assert!(self.entries.len() < self.capacity, "MSHR file full");
        assert!(self.in_flight(line).is_none(), "line already in flight");
        self.entries.push(Entry {
            line,
            fill_done,
            dirty_on_fill,
        });
    }

    /// Number of outstanding fills.
    pub fn outstanding(&self) -> usize {
        self.entries.len()
    }

    /// Serializes the file (capacity + outstanding fills, sorted by line so
    /// the encoding is byte-stable).
    pub fn snapshot_encode(&self, enc: &mut SnapEncoder) {
        enc.usize(self.capacity);
        let mut sorted: Vec<&Entry> = self.entries.iter().collect();
        sorted.sort_unstable_by_key(|e| e.line);
        enc.usize(sorted.len());
        for e in sorted {
            enc.u64(e.line);
            enc.u64(e.fill_done);
            enc.bool(e.dirty_on_fill);
        }
    }

    /// Rebuilds a file written by [`MshrFile::snapshot_encode`].
    pub fn snapshot_decode(dec: &mut SnapDecoder<'_>) -> Result<MshrFile, SnapCodecError> {
        let capacity = dec.usize()?;
        if capacity == 0 {
            return Err(SnapCodecError::BadValue);
        }
        let n = dec.seq_len(17)?;
        if n > capacity {
            return Err(SnapCodecError::BadValue);
        }
        let mut file = MshrFile::new(capacity);
        for _ in 0..n {
            let line = dec.u64()?;
            let fill_done = dec.u64()?;
            let dirty_on_fill = dec.bool()?;
            if file.in_flight(line).is_some() {
                return Err(SnapCodecError::BadValue);
            }
            file.entries.push(Entry {
                line,
                fill_done,
                dirty_on_fill,
            });
        }
        Ok(file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_combine() {
        let mut m = MshrFile::new(2);
        m.allocate(10, 100, false);
        assert_eq!(m.in_flight(10), Some(100));
        assert_eq!(m.in_flight(11), None);
        m.mark_dirty_on_fill(10);
        assert!(m.dirty_on_fill(10));
    }

    #[test]
    fn prune_releases_registers() {
        let mut m = MshrFile::new(1);
        m.allocate(1, 50, false);
        assert!(m.full(10));
        assert!(!m.full(50), "completed fill frees the register");
        assert_eq!(m.outstanding(), 0);
    }

    #[test]
    fn earliest_completion_for_stall() {
        let mut m = MshrFile::new(2);
        m.allocate(1, 80, false);
        m.allocate(2, 60, false);
        assert_eq!(m.earliest_completion(), Some(60));
    }

    #[test]
    #[should_panic(expected = "MSHR file full")]
    fn overflow_panics() {
        let mut m = MshrFile::new(1);
        m.allocate(1, 10, false);
        m.allocate(2, 10, false);
    }

    #[test]
    #[should_panic(expected = "already in flight")]
    fn duplicate_line_panics() {
        let mut m = MshrFile::new(2);
        m.allocate(1, 10, false);
        m.allocate(1, 20, false);
    }
}
