//! Configuration of the cache hierarchy.

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLevelConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Set associativity (ways).
    pub assoc: u32,
    /// Access latency in cycles for a hit at this level.
    pub hit_latency: u64,
}

impl CacheLevelConfig {
    /// Number of sets for a given line size.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (capacity smaller than one set).
    pub fn sets(&self, line_bytes: u64) -> u64 {
        let sets = self.size_bytes / (line_bytes * u64::from(self.assoc));
        assert!(
            sets >= 1,
            "cache of {} bytes cannot hold {}-way sets of {}-byte lines",
            self.size_bytes,
            self.assoc,
            line_bytes
        );
        sets
    }
}

/// Configuration of the whole hierarchy.
///
/// The defaults model the late-1990s out-of-order machine of the paper's
/// evaluation (MIPS R10000 class), scaled so the benchmark working sets
/// comfortably exceed the caches: 16 KiB 2-way L1D, 256 KiB 4-way unified
/// L2, 75-cycle memory. The line size is the paper's central experimental
/// parameter (Fig. 5 sweeps 32/64/128 B) and is shared by both levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Cache line size in bytes (both levels).
    pub line_bytes: u64,
    /// L1 data cache.
    pub l1: CacheLevelConfig,
    /// Unified L2 cache.
    pub l2: CacheLevelConfig,
    /// Main-memory access latency in cycles (after the L2 lookup).
    pub mem_latency: u64,
    /// L1↔L2 bus bandwidth in bytes per cycle.
    pub l1_l2_bytes_per_cycle: u64,
    /// L2↔memory bus bandwidth in bytes per cycle.
    pub mem_bytes_per_cycle: u64,
    /// Number of miss-status holding registers (outstanding misses).
    pub mshrs: usize,
    /// Hardware next-line prefetcher: every demand full miss also fetches
    /// the next sequential line (tagged prefetch). Off by default — the
    /// paper's machine uses software prefetching only.
    pub next_line_prefetch: bool,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            line_bytes: 32,
            l1: CacheLevelConfig {
                size_bytes: 16 * 1024,
                assoc: 2,
                hit_latency: 1,
            },
            l2: CacheLevelConfig {
                size_bytes: 256 * 1024,
                assoc: 4,
                hit_latency: 10,
            },
            mem_latency: 75,
            l1_l2_bytes_per_cycle: 16,
            mem_bytes_per_cycle: 8,
            mshrs: 8,
            next_line_prefetch: false,
        }
    }
}

impl HierarchyConfig {
    /// Returns a copy with a different line size (the Fig. 5 sweep knob).
    pub fn with_line_bytes(mut self, line_bytes: u64) -> Self {
        assert!(
            line_bytes.is_power_of_two() && line_bytes >= 16,
            "line size must be a power of two >= 16"
        );
        self.line_bytes = line_bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_is_sane() {
        let c = HierarchyConfig::default();
        assert_eq!(c.l1.sets(c.line_bytes), 256);
        assert_eq!(c.l2.sets(c.line_bytes), 2048);
    }

    #[test]
    fn with_line_bytes_sweep() {
        for lb in [32u64, 64, 128, 256] {
            let c = HierarchyConfig::default().with_line_bytes(lb);
            assert_eq!(c.line_bytes, lb);
            assert!(c.l1.sets(lb) >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_line() {
        let _ = HierarchyConfig::default().with_line_bytes(48);
    }

    #[test]
    #[should_panic]
    fn rejects_degenerate_geometry() {
        let c = CacheLevelConfig {
            size_bytes: 64,
            assoc: 8,
            hit_latency: 1,
        };
        let _ = c.sets(128);
    }
}
