//! One cache level: an array of LRU sets addressed by line number.

use crate::config::CacheLevelConfig;
use crate::lru::{Evicted, LruSet};
use memfwd_tagmem::{SnapCodecError, SnapDecoder, SnapEncoder};

/// A single write-back, write-allocate cache level.
///
/// Addresses are presented as *line numbers* (byte address divided by line
/// size); the level splits them into set index and tag.
#[derive(Debug)]
pub struct CacheLevel {
    sets: Vec<LruSet>,
    assoc: u32,
    seq: u64,
    /// `log2(sets.len())` when the set count is a power of two (the normal
    /// geometry), letting [`CacheLevel::split`] use mask/shift instead of a
    /// hardware-unrealistic (and host-slow) divide. [`SET_SHIFT_DIV`] marks
    /// the division fallback for odd geometries built from raw config
    /// literals.
    set_shift: u32,
    set_mask: u64,
}

/// Sentinel `set_shift`: the set count is not a power of two, index by
/// division.
const SET_SHIFT_DIV: u32 = u32::MAX;

fn index_math(n_sets: usize) -> (u32, u64) {
    let n = n_sets as u64;
    if n.is_power_of_two() {
        (n.trailing_zeros(), n - 1)
    } else {
        (SET_SHIFT_DIV, 0)
    }
}

impl CacheLevel {
    /// Builds the level for a given line size.
    pub fn new(cfg: CacheLevelConfig, line_bytes: u64) -> CacheLevel {
        let n = cfg.sets(line_bytes);
        let (set_shift, set_mask) = index_math(n as usize);
        CacheLevel {
            sets: vec![LruSet::default(); n as usize],
            assoc: cfg.assoc,
            seq: 0,
            set_shift,
            set_mask,
        }
    }

    #[inline]
    fn split(&self, line: u64) -> (usize, u64) {
        if self.set_shift != SET_SHIFT_DIV {
            ((line & self.set_mask) as usize, line >> self.set_shift)
        } else {
            let n = self.sets.len() as u64;
            ((line % n) as usize, line / n)
        }
    }

    /// Looks up `line`; on hit refreshes LRU recency and returns `true`.
    /// Inlined into the hierarchy's L1-hit fast path.
    #[inline]
    pub fn lookup(&mut self, line: u64) -> bool {
        self.seq += 1;
        let seq = self.seq;
        let (set, tag) = self.split(line);
        self.sets[set].touch(tag, seq)
    }

    /// Store lookup: on hit refreshes recency *and* sets the dirty bit in
    /// one way scan. State-identical to [`CacheLevel::lookup`] followed by
    /// [`CacheLevel::mark_dirty`].
    #[inline]
    pub fn lookup_store(&mut self, line: u64) -> bool {
        self.seq += 1;
        let seq = self.seq;
        let (set, tag) = self.split(line);
        self.sets[set].touch_dirty(tag, seq)
    }

    /// Presence check without recency update.
    pub fn probe(&self, line: u64) -> bool {
        let (set, tag) = self.split(line);
        self.sets[set].contains(tag)
    }

    /// Marks `line` dirty if resident.
    pub fn mark_dirty(&mut self, line: u64) -> bool {
        let (set, tag) = self.split(line);
        self.sets[set].mark_dirty(tag)
    }

    /// Fills `line` into the level, returning the evicted line (as a line
    /// number) and its dirtiness if a victim had to be displaced.
    pub fn fill(&mut self, line: u64, dirty: bool) -> Option<(u64, bool)> {
        self.seq += 1;
        let seq = self.seq;
        let (set, tag) = self.split(line);
        if self.sets[set].contains(tag) {
            // Benign race: the line was filled by an overlapping request.
            if dirty {
                self.sets[set].mark_dirty(tag);
            }
            return None;
        }
        let n = self.sets.len() as u64;
        self.sets[set]
            .insert(tag, dirty, seq, self.assoc)
            .map(|Evicted { tag, dirty }| (tag * n + set as u64, dirty))
    }

    /// Removes `line` if resident, returning whether it was dirty.
    pub fn invalidate(&mut self, line: u64) -> Option<bool> {
        let (set, tag) = self.split(line);
        self.sets[set].invalidate(tag)
    }

    /// Number of lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Serializes the level's full state (geometry, LRU clock, every set).
    pub fn snapshot_encode(&self, enc: &mut SnapEncoder) {
        enc.u32(self.assoc);
        enc.u64(self.seq);
        enc.seq(self.sets.iter(), |e, s| s.snapshot_encode(e));
    }

    /// Rebuilds a level written by [`CacheLevel::snapshot_encode`].
    pub fn snapshot_decode(dec: &mut SnapDecoder<'_>) -> Result<CacheLevel, SnapCodecError> {
        let assoc = dec.u32()?;
        if assoc == 0 {
            return Err(SnapCodecError::BadValue);
        }
        let seq = dec.u64()?;
        let n = dec.seq_len(8)?;
        if n == 0 {
            return Err(SnapCodecError::BadValue);
        }
        let mut sets = Vec::with_capacity(n);
        for _ in 0..n {
            let set = LruSet::snapshot_decode(dec)?;
            if set.len() > assoc as usize {
                return Err(SnapCodecError::BadValue);
            }
            sets.push(set);
        }
        let (set_shift, set_mask) = index_math(sets.len());
        Ok(CacheLevel {
            sets,
            assoc,
            seq,
            set_shift,
            set_mask,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheLevel {
        // 4 sets x 2 ways of 32-byte lines = 256 bytes.
        CacheLevel::new(
            CacheLevelConfig {
                size_bytes: 256,
                assoc: 2,
                hit_latency: 1,
            },
            32,
        )
    }

    #[test]
    fn fill_then_hit() {
        let mut c = tiny();
        assert!(!c.lookup(5));
        c.fill(5, false);
        assert!(c.lookup(5));
        assert!(c.probe(5));
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn eviction_returns_correct_line_number() {
        let mut c = tiny();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.fill(0, false);
        c.fill(4, true);
        c.lookup(0); // make 4 the LRU
        let ev = c.fill(8, false).unwrap();
        assert_eq!(ev, (4, true));
        assert!(c.probe(0) && c.probe(8) && !c.probe(4));
    }

    #[test]
    fn conflict_only_within_set() {
        let mut c = tiny();
        c.fill(0, false);
        c.fill(1, false);
        c.fill(2, false);
        c.fill(3, false);
        assert_eq!(c.resident_lines(), 4, "different sets do not conflict");
    }

    #[test]
    fn double_fill_is_benign() {
        let mut c = tiny();
        c.fill(7, false);
        assert!(c.fill(7, true).is_none(), "duplicate fill evicts nothing");
        // Dirtiness merged from the duplicate fill:
        assert_eq!(c.invalidate(7), Some(true));
    }

    #[test]
    fn invalidate_reports_dirty() {
        let mut c = tiny();
        c.fill(9, false);
        c.mark_dirty(9);
        assert_eq!(c.invalidate(9), Some(true));
        assert_eq!(c.invalidate(9), None);
    }
}
