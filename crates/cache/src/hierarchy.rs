//! The two-level hierarchy: L1D + unified L2 + main memory.

use crate::bus::Bus;
use crate::config::HierarchyConfig;
use crate::level::CacheLevel;
use crate::mshr::MshrFile;
use crate::stats::{CacheStats, ClassCounts};
use memfwd_tagmem::{FxHashSet, SnapCodecError, SnapDecoder, SnapEncoder};

/// The class of a memory access presented to the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A demand load (includes forwarding-bit reads: the bit travels with
    /// the line, so testing it requires the line in the primary cache).
    Load,
    /// A demand store (write-allocate).
    Store,
    /// A non-binding software prefetch.
    Prefetch,
}

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Hit in the L1 data cache.
    L1Hit,
    /// Combined with an outstanding miss to the same line.
    PartialMiss,
    /// Missed L1, hit in L2.
    L2Hit,
    /// Missed both levels; serviced by main memory.
    MemMiss,
    /// Prefetch dropped: no MSHR available.
    PrefetchDropped,
    /// Prefetch found the line resident or already in flight.
    PrefetchRedundant,
}

/// Result of presenting one access to the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Cycle at which the data is available (for prefetches: when the fill
    /// completes; callers do not wait on it).
    pub complete_at: u64,
    /// Classification of the access.
    pub outcome: Outcome,
}

impl Access {
    /// True if this access missed the L1 data cache (partial or full).
    pub fn l1_miss(&self) -> bool {
        !matches!(self.outcome, Outcome::L1Hit)
    }
}

/// The cache hierarchy timing model. See the crate docs for an overview.
#[derive(Debug)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    l1: CacheLevel,
    l2: CacheLevel,
    mshr: MshrFile,
    bus12: Bus,
    busmem: Bus,
    stats: CacheStats,
    /// Lines brought in by the hardware prefetcher and not yet demanded —
    /// the "tag" of tagged next-line prefetching.
    hw_tagged: FxHashSet<u64>,
    /// `log2(line_bytes)` when the line size is a power of two (always true
    /// for configs built through `with_line_bytes`); [`LINE_SHIFT_DIV`]
    /// selects the division fallback.
    line_shift: u32,
}

/// Sentinel `line_shift`: line size is not a power of two, divide instead.
const LINE_SHIFT_DIV: u32 = u32::MAX;

fn line_shift_of(line_bytes: u64) -> u32 {
    if line_bytes.is_power_of_two() {
        line_bytes.trailing_zeros()
    } else {
        LINE_SHIFT_DIV
    }
}

impl Hierarchy {
    /// Builds the hierarchy from a configuration.
    pub fn new(cfg: HierarchyConfig) -> Hierarchy {
        Hierarchy {
            l1: CacheLevel::new(cfg.l1, cfg.line_bytes),
            l2: CacheLevel::new(cfg.l2, cfg.line_bytes),
            mshr: MshrFile::new(cfg.mshrs),
            bus12: Bus::new(cfg.l1_l2_bytes_per_cycle),
            busmem: Bus::new(cfg.mem_bytes_per_cycle),
            stats: CacheStats::default(),
            hw_tagged: FxHashSet::default(),
            line_shift: line_shift_of(cfg.line_bytes),
            cfg,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Line number containing byte address `addr`.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        if self.line_shift != LINE_SHIFT_DIV {
            addr >> self.line_shift
        } else {
            addr / self.cfg.line_bytes
        }
    }

    /// Presents an access at cycle `now` for byte address `addr`.
    ///
    /// Returns the completion time and outcome. State (cache contents, MSHR
    /// occupancy, bus reservations) is updated. Prefetches never block the
    /// caller; they are dropped when no MSHR is free.
    pub fn access(&mut self, now: u64, addr: u64, kind: AccessKind) -> Access {
        let r = self.access_inner(now, addr, kind);
        // Tagged next-line prefetcher: a demand reference that missed L1,
        // or the first demand touch of a hardware-prefetched line, requests
        // the next sequential line. The Prefetch kind cannot recurse.
        if self.cfg.next_line_prefetch && kind != AccessKind::Prefetch {
            let line = self.line_of(addr);
            let first_touch_of_prefetched = self.hw_tagged.remove(&line);
            if r.l1_miss() || first_touch_of_prefetched {
                let next = line + 1;
                self.access_inner(now, next * self.cfg.line_bytes, AccessKind::Prefetch);
                self.hw_tagged.insert(next);
            }
        }
        r
    }

    fn access_inner(&mut self, now: u64, addr: u64, kind: AccessKind) -> Access {
        let line = self.line_of(addr);

        // 1. Combine with an in-flight fill (partial miss). When no fills
        // are outstanding — the steady state of a cache-resident working
        // set — skip the prune and probe entirely.
        if !self.mshr.is_empty() {
            self.mshr.prune(now);
            if let Some(fill_done) = self.mshr.in_flight(line) {
                return self.partial_miss(now, kind, line, fill_done);
            }
        }
        // 2. L1 lookup. A store hit touches recency and sets the dirty bit
        // in the same way scan.
        let l1_hit = if kind == AccessKind::Store {
            self.l1.lookup_store(line)
        } else {
            self.l1.lookup(line)
        };
        if l1_hit {
            return match kind {
                AccessKind::Prefetch => {
                    self.stats.prefetches_redundant += 1;
                    Access {
                        complete_at: now,
                        outcome: Outcome::PrefetchRedundant,
                    }
                }
                AccessKind::Load | AccessKind::Store => {
                    self.count_class(kind, |c| c.l1_hits += 1);
                    Access {
                        complete_at: now + self.cfg.l1.hit_latency,
                        outcome: Outcome::L1Hit,
                    }
                }
            };
        }

        // 3. Full miss: need an MSHR.
        let mut t = now;
        if self.mshr.full(t) {
            if kind == AccessKind::Prefetch {
                self.stats.prefetches_dropped += 1;
                return Access {
                    complete_at: now,
                    outcome: Outcome::PrefetchDropped,
                };
            }
            while self.mshr.full(t) {
                t = self
                    .mshr
                    .earliest_completion()
                    .expect("full MSHR file has entries");
            }
        }

        let lookup_l2_at = t + self.cfg.l1.hit_latency;
        let line_bytes = self.cfg.line_bytes;
        let (fill_done, outcome) = if self.l2.lookup(line) {
            let done = self
                .bus12
                .transfer(lookup_l2_at + self.cfg.l2.hit_latency, line_bytes);
            self.stats.l2_hits += 1;
            (done, Outcome::L2Hit)
        } else {
            self.stats.l2_misses += 1;
            let mem_ready = lookup_l2_at + self.cfg.l2.hit_latency + self.cfg.mem_latency;
            let at_l2 = self.busmem.transfer(mem_ready, line_bytes);
            // Fill L2, writing back a dirty victim to memory.
            if let Some((_victim, dirty)) = self.l2.fill(line, false) {
                if dirty {
                    self.busmem.transfer(at_l2, line_bytes);
                    self.stats.l2_writebacks += 1;
                }
            }
            let done = self.bus12.transfer(at_l2, line_bytes);
            (done, Outcome::MemMiss)
        };

        // Fill L1, handling a dirty victim.
        let dirty = kind == AccessKind::Store;
        if let Some((victim, vdirty)) = self.l1.fill(line, dirty) {
            if vdirty {
                self.writeback_l1_victim(victim, fill_done);
            }
        }
        self.mshr.allocate(line, fill_done, dirty);

        match kind {
            AccessKind::Prefetch => {
                self.stats.prefetches_issued += 1;
                Access {
                    complete_at: fill_done,
                    outcome,
                }
            }
            AccessKind::Load | AccessKind::Store => {
                self.count_class(kind, |c| c.full_misses += 1);
                Access {
                    complete_at: fill_done,
                    outcome,
                }
            }
        }
    }

    #[cold]
    fn partial_miss(&mut self, now: u64, kind: AccessKind, line: u64, fill_done: u64) -> Access {
        match kind {
            AccessKind::Prefetch => {
                self.stats.prefetches_redundant += 1;
                Access {
                    complete_at: now,
                    outcome: Outcome::PrefetchRedundant,
                }
            }
            AccessKind::Load | AccessKind::Store => {
                self.count_class(kind, |c| c.partial_misses += 1);
                if kind == AccessKind::Store {
                    self.l1.mark_dirty(line);
                }
                Access {
                    complete_at: fill_done.max(now + self.cfg.l1.hit_latency),
                    outcome: Outcome::PartialMiss,
                }
            }
        }
    }

    /// Issues a block prefetch of `lines` consecutive cache lines starting
    /// at the line containing `addr` (the paper's block prefetching).
    pub fn prefetch_block(&mut self, now: u64, addr: u64, lines: u64) {
        let base = self.line_of(addr) * self.cfg.line_bytes;
        for i in 0..lines {
            self.access(now, base + i * self.cfg.line_bytes, AccessKind::Prefetch);
        }
    }

    fn writeback_l1_victim(&mut self, victim_line: u64, now: u64) {
        self.stats.l1_writebacks += 1;
        let line_bytes = self.cfg.line_bytes;
        let done = self.bus12.transfer(now, line_bytes);
        if !self.l2.mark_dirty(victim_line) {
            // Victim not resident in L2 (we model non-inclusive caches):
            // install it dirty, spilling a dirty L2 victim to memory.
            if let Some((_l2v, d)) = self.l2.fill(victim_line, true) {
                if d {
                    self.busmem.transfer(done, line_bytes);
                    self.stats.l2_writebacks += 1;
                }
            }
        }
    }

    fn count_class(&mut self, kind: AccessKind, f: impl FnOnce(&mut crate::stats::ClassCounts)) {
        match kind {
            AccessKind::Load => f(&mut self.stats.loads),
            AccessKind::Store => f(&mut self.stats.stores),
            AccessKind::Prefetch => {}
        }
    }

    /// Accumulated hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Bytes moved between L1 and L2 (fills + writebacks) — Fig. 6(b).
    pub fn bytes_l1_l2(&self) -> u64 {
        self.bus12.total_bytes()
    }

    /// Bytes moved between L2 and memory (fills + writebacks) — Fig. 6(b).
    pub fn bytes_l2_mem(&self) -> u64 {
        self.busmem.total_bytes()
    }

    /// Serializes the entire hierarchy runtime state (both levels, MSHRs,
    /// buses, statistics, prefetcher tags). The configuration is **not**
    /// encoded — [`Hierarchy::snapshot_decode`] takes it as a parameter, and
    /// the snapshot container carries a configuration fingerprint instead.
    pub fn snapshot_encode(&self, enc: &mut SnapEncoder) {
        self.l1.snapshot_encode(enc);
        self.l2.snapshot_encode(enc);
        self.mshr.snapshot_encode(enc);
        self.bus12.snapshot_encode(enc);
        self.busmem.snapshot_encode(enc);
        for c in [&self.stats.loads, &self.stats.stores] {
            enc.u64(c.l1_hits);
            enc.u64(c.partial_misses);
            enc.u64(c.full_misses);
        }
        enc.u64(self.stats.l2_hits);
        enc.u64(self.stats.l2_misses);
        enc.u64(self.stats.prefetches_issued);
        enc.u64(self.stats.prefetches_dropped);
        enc.u64(self.stats.prefetches_redundant);
        enc.u64(self.stats.l1_writebacks);
        enc.u64(self.stats.l2_writebacks);
        let mut tagged: Vec<u64> = self.hw_tagged.iter().copied().collect();
        tagged.sort_unstable();
        enc.seq(tagged.iter(), |e, &line| e.u64(line));
    }

    /// Rebuilds a hierarchy written by [`Hierarchy::snapshot_encode`] under
    /// configuration `cfg` (which must match the one in force at save time).
    pub fn snapshot_decode(
        dec: &mut SnapDecoder<'_>,
        cfg: HierarchyConfig,
    ) -> Result<Hierarchy, SnapCodecError> {
        let l1 = CacheLevel::snapshot_decode(dec)?;
        let l2 = CacheLevel::snapshot_decode(dec)?;
        let mshr = MshrFile::snapshot_decode(dec)?;
        let bus12 = Bus::snapshot_decode(dec)?;
        let busmem = Bus::snapshot_decode(dec)?;
        let mut classes = [ClassCounts::default(); 2];
        for c in &mut classes {
            c.l1_hits = dec.u64()?;
            c.partial_misses = dec.u64()?;
            c.full_misses = dec.u64()?;
        }
        let stats = CacheStats {
            loads: classes[0],
            stores: classes[1],
            l2_hits: dec.u64()?,
            l2_misses: dec.u64()?,
            prefetches_issued: dec.u64()?,
            prefetches_dropped: dec.u64()?,
            prefetches_redundant: dec.u64()?,
            l1_writebacks: dec.u64()?,
            l2_writebacks: dec.u64()?,
        };
        let n = dec.seq_len(8)?;
        let mut hw_tagged = FxHashSet::default();
        hw_tagged.reserve(n);
        for _ in 0..n {
            if !hw_tagged.insert(dec.u64()?) {
                return Err(SnapCodecError::BadValue);
            }
        }
        Ok(Hierarchy {
            line_shift: line_shift_of(cfg.line_bytes),
            cfg,
            l1,
            l2,
            mshr,
            bus12,
            busmem,
            stats,
            hw_tagged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Hierarchy {
        Hierarchy::new(HierarchyConfig {
            line_bytes: 32,
            l1: crate::CacheLevelConfig {
                size_bytes: 256,
                assoc: 2,
                hit_latency: 1,
            },
            l2: crate::CacheLevelConfig {
                size_bytes: 1024,
                assoc: 2,
                hit_latency: 10,
            },
            mem_latency: 75,
            l1_l2_bytes_per_cycle: 16,
            mem_bytes_per_cycle: 8,
            mshrs: 2,
            next_line_prefetch: false,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut h = small();
        let a = h.access(0, 0x40, AccessKind::Load);
        assert_eq!(a.outcome, Outcome::MemMiss);
        assert!(a.l1_miss());
        // 1 (L1) + 10 (L2) + 75 (mem) + 4 (mem bus) + 2 (L1-L2 bus) = 92
        assert_eq!(a.complete_at, 92);
        let b = h.access(a.complete_at, 0x48, AccessKind::Load);
        assert_eq!(b.outcome, Outcome::L1Hit);
        assert_eq!(b.complete_at, a.complete_at + 1);
        let s = h.stats();
        assert_eq!(s.loads.full_misses, 1);
        assert_eq!(s.loads.l1_hits, 1);
    }

    #[test]
    fn partial_miss_combines() {
        let mut h = small();
        let a = h.access(0, 0x40, AccessKind::Load);
        let b = h.access(1, 0x50, AccessKind::Load); // same 32 B line? 0x40..0x60: yes
        assert_eq!(b.outcome, Outcome::PartialMiss);
        assert_eq!(b.complete_at, a.complete_at);
        assert_eq!(h.stats().loads.partial_misses, 1);
    }

    #[test]
    fn after_fill_completes_it_is_a_hit() {
        let mut h = small();
        let a = h.access(0, 0x40, AccessKind::Load);
        let b = h.access(a.complete_at + 1, 0x40, AccessKind::Load);
        assert_eq!(b.outcome, Outcome::L1Hit);
    }

    #[test]
    fn l2_hit_is_cheaper_than_memory() {
        let mut h = small();
        let a = h.access(0, 0x40, AccessKind::Load);
        // Evict 0x40's line from tiny L1 (4 sets x 2 ways): lines mapping to
        // the same set are 0x40 + k*128.
        let t = a.complete_at + 1;
        h.access(t, 0x40 + 128, AccessKind::Load);
        let b = h.access(t + 200, 0x40 + 256, AccessKind::Load);
        let c = h.access(b.complete_at + 200, 0x40, AccessKind::Load);
        assert_eq!(c.outcome, Outcome::L2Hit);
        let base = c.complete_at - (b.complete_at + 200);
        assert!(base < 20, "L2 hit took {base} cycles");
    }

    #[test]
    fn mshr_exhaustion_delays_new_miss() {
        let mut h = small();
        h.access(0, 0x1000, AccessKind::Load);
        h.access(0, 0x2000, AccessKind::Load);
        // Third distinct-line miss at cycle 0 must wait for an MSHR.
        let c = h.access(0, 0x3000, AccessKind::Load);
        assert!(
            c.complete_at > 92 + 80,
            "waited for an MSHR, got {}",
            c.complete_at
        );
    }

    #[test]
    fn store_marks_line_dirty_and_writes_back() {
        let mut h = small();
        let a = h.access(0, 0x40, AccessKind::Store);
        assert_eq!(h.stats().stores.full_misses, 1);
        let mut t = a.complete_at + 1;
        // Evict the dirty line by touching two more lines of the same set.
        for k in 1..=2u64 {
            let r = h.access(t, 0x40 + k * 128, AccessKind::Load);
            t = r.complete_at + 1;
        }
        assert_eq!(h.stats().l1_writebacks, 1);
        assert!(h.bytes_l1_l2() >= 4 * 32, "3 fills + 1 writeback");
    }

    #[test]
    fn prefetch_fills_without_counting_demand_misses() {
        let mut h = small();
        h.prefetch_block(0, 0x40, 2);
        let s = h.stats();
        assert_eq!(s.prefetches_issued, 2);
        assert_eq!(s.loads.total(), 0);
        let a = h.access(500, 0x40, AccessKind::Load);
        assert_eq!(a.outcome, Outcome::L1Hit, "prefetched line hits");
    }

    #[test]
    fn prefetch_redundant_and_dropped() {
        let mut h = small();
        h.access(0, 0x40, AccessKind::Load);
        h.access(0, 0x1000, AccessKind::Load); // MSHRs now full (2)
        h.prefetch_block(0, 0x40, 1); // in flight -> redundant
        h.prefetch_block(0, 0x2000, 1); // no MSHR -> dropped
        let s = h.stats();
        assert_eq!(s.prefetches_redundant, 1);
        assert_eq!(s.prefetches_dropped, 1);
        assert_eq!(s.prefetches_issued, 0);
    }

    #[test]
    fn early_prefetch_hides_latency() {
        let mut h = small();
        h.prefetch_block(0, 0x40, 1);
        let a = h.access(200, 0x40, AccessKind::Load);
        assert_eq!(a.complete_at, 201, "fully hidden prefetch");
    }

    #[test]
    fn next_line_prefetcher_turns_sequential_misses_into_hits() {
        let cfg = HierarchyConfig {
            next_line_prefetch: true,
            ..HierarchyConfig::default()
        };
        let mut h = Hierarchy::new(cfg);
        let mut t = 0;
        let mut full = 0;
        for i in 0..32u64 {
            let r = h.access(t, 0x10_0000 + i * 32, AccessKind::Load);
            t = r.complete_at + 50;
            if r.outcome == Outcome::MemMiss {
                full += 1;
            }
        }
        assert!(
            full <= 2,
            "next-line prefetch should cover the stream: {full}"
        );
        assert!(h.stats().prefetches_issued > 0);
    }

    #[test]
    fn bandwidth_grows_with_line_size() {
        let mut bytes = Vec::new();
        for lb in [32u64, 64, 128] {
            let mut h = Hierarchy::new(HierarchyConfig::default().with_line_bytes(lb));
            let mut t = 0;
            // Strided accesses with no spatial locality.
            for i in 0..64u64 {
                let r = h.access(t, i * 4096, AccessKind::Load);
                t = r.complete_at + 1;
            }
            bytes.push(h.bytes_l2_mem());
        }
        assert!(bytes[0] < bytes[1] && bytes[1] < bytes[2]);
    }

    #[test]
    fn spatial_locality_reduces_misses_with_longer_lines() {
        let mut misses = Vec::new();
        for lb in [32u64, 128] {
            let mut h = Hierarchy::new(HierarchyConfig::default().with_line_bytes(lb));
            let mut t = 0;
            for i in 0..1024u64 {
                let r = h.access(t, 0x10_0000 + i * 8, AccessKind::Load);
                t = r.complete_at + 1;
            }
            misses.push(h.stats().loads.full_misses);
        }
        assert_eq!(misses[0], 256);
        assert_eq!(misses[1], 64);
    }
}
