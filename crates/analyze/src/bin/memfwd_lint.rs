//! `memfwd_lint` — the static forwarding-safety linter.
//!
//! Verifies relocation plans (captured from the stock applications or read
//! from plan files) and certifies SMP campaigns race-free, reporting
//! stable `MF0xx` diagnostics in human or JSON form.

use memfwd::MemoryModel;
use memfwd_analyze::{
    alias_summary, app_target, capture_app_plan, certify_stock_campaigns_model, check_litmus,
    diff_plans, infer_hop_budget, parse_litmus, parse_plan, race_report, render_alias_human,
    render_alias_json, render_diff_human, render_diff_json, render_edits, render_human,
    render_json, render_litmus_human, render_litmus_json, render_plan, repair_plan, verify_plan,
    AliasSummary, DenySet, RepairOutcome, Report,
};
use memfwd_apps::{App, RunConfig, Scale, Variant};
use std::path::PathBuf;

const USAGE: &str = "\
memfwd-lint: statically verify relocation schedules and certify SMP campaigns

USAGE:
    memfwd_lint [OPTIONS]

TARGETS (at least one; may be repeated/combined):
    --app <name|all>        capture and verify the relocation plan of a
                            stock app (health|mst|radiosity|vis|eqntott|
                            bh|compress|smv, or 'all')
    --plan <file>           verify a plan file (see fixtures/*.plan)
    --smp-certify           run the stock SMP campaigns through the
                            happens-before race certifier
    --smp-seeded-race       run the deliberately racy campaign (expected
                            to flag MF009; for testing the certifier)
    --smp-seeded-fbit       run the seeded forwarding-bit publication
                            campaigns under TSO: the unfenced variant is
                            expected to flag MF010, the release-fenced
                            variant to certify clean
    --litmus <path>         model-check a .litmus file (or every .litmus
                            file in a directory) under SC and TSO:
                            enumerate all schedules, compare outcome sets
                            against the declared allowed/forbidden lines,
                            certify the canonical schedule, and
                            cross-validate certifier soundness; honors
                            --format; exit 1 on any violation
    --diff <old> <new>      structurally diff two plan files instead of
                            linting: report changed steps (common-prefix/
                            suffix trim), bounds, budget, and pre-edges;
                            honors --format; exit 0 if identical, 1 if
                            they differ

    --repair <out>          instead of linting, repair the single --plan
                            target by terminal-rewriting step targets
                            (MF002/MF004 class findings), re-verify the
                            edited plan, and write it to <out> only if it
                            certifies free of error-severity findings;
                            exit 1 if the plan is unrepairable
    --alias-summary         instead of linting, report per-target aliasing
                            statistics (shared words, overlapping step
                            pairs, hottest word) for each --app/--plan
                            target; honors --format

    --infer-hop-budget      instead of linting, report the minimum safe
                            hard_hop_budget for each --app/--plan target
                            (the deepest chain walk the machine would
                            budget-check); exit 1 if a target's
                            configured budget is below the minimum, or if
                            a forwarding cycle makes every budget unsafe

OPTIONS:
    --memory-model <m>      sc|tso (default: sc): the memory model the
                            SMP campaigns of --smp-certify run under;
                            TSO traces carry store-buffer events and can
                            additionally flag MF010/MF011/MF012
    --variant <v>           original|optimized|static (default: optimized)
    --scale <s>             smoke|bench (default: smoke)
    --seed <n>              workload seed (default: 12345)
    --format <f>            human|json (default: human)
    --deny <codes|all>      comma-separated warning codes to deny, or
                            'all'; error-severity diagnostics always deny
    --help                  print this text

EXIT CODES:
    0  no denied diagnostics (--diff: plans identical; --infer-hop-budget:
       every configured budget is sufficient)
    1  lint gate failed (--diff: plans differ; --infer-hop-budget: a
       configured budget is below the minimum, or no finite budget is safe)
    2  usage error
";

struct Cli {
    apps: Vec<App>,
    plans: Vec<PathBuf>,
    smp_certify: bool,
    smp_seeded_race: bool,
    smp_seeded_fbit: bool,
    litmus: Option<PathBuf>,
    diff: Option<(PathBuf, PathBuf)>,
    infer_hop_budget: bool,
    repair: Option<PathBuf>,
    alias: bool,
    memory_model: MemoryModel,
    variant: Variant,
    scale: Scale,
    seed: u64,
    json: bool,
    deny: DenySet,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        apps: Vec::new(),
        plans: Vec::new(),
        smp_certify: false,
        smp_seeded_race: false,
        smp_seeded_fbit: false,
        litmus: None,
        diff: None,
        infer_hop_budget: false,
        repair: None,
        alias: false,
        memory_model: MemoryModel::Sc,
        variant: Variant::Optimized,
        scale: Scale::Smoke,
        seed: 12345,
        json: false,
        deny: DenySet::default(),
    };
    let mut args = std::env::args().skip(1);
    let next_val = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--app" => {
                let v = next_val(&mut args, "--app")?;
                if v == "all" {
                    cli.apps.extend(App::ALL);
                } else {
                    cli.apps
                        .push(App::from_name(&v).ok_or_else(|| format!("unknown app '{v}'"))?);
                }
            }
            "--plan" => cli
                .plans
                .push(PathBuf::from(next_val(&mut args, "--plan")?)),
            "--infer-hop-budget" => cli.infer_hop_budget = true,
            "--repair" => cli.repair = Some(PathBuf::from(next_val(&mut args, "--repair")?)),
            "--alias-summary" => cli.alias = true,
            "--smp-certify" => cli.smp_certify = true,
            "--smp-seeded-race" => cli.smp_seeded_race = true,
            "--smp-seeded-fbit" => cli.smp_seeded_fbit = true,
            "--litmus" => cli.litmus = Some(PathBuf::from(next_val(&mut args, "--litmus")?)),
            "--memory-model" => {
                let v = next_val(&mut args, "--memory-model")?;
                cli.memory_model = MemoryModel::from_name(&v)
                    .ok_or_else(|| format!("unknown memory model '{v}'"))?;
            }
            "--diff" => {
                let old = next_val(&mut args, "--diff")?;
                let new = args.next().ok_or("--diff needs two plan files")?;
                cli.diff = Some((PathBuf::from(old), PathBuf::from(new)));
            }
            "--variant" => {
                let v = next_val(&mut args, "--variant")?;
                cli.variant =
                    Variant::from_name(&v).ok_or_else(|| format!("unknown variant '{v}'"))?;
            }
            "--scale" => {
                cli.scale = match next_val(&mut args, "--scale")?.as_str() {
                    "smoke" => Scale::Smoke,
                    "bench" => Scale::Bench,
                    other => return Err(format!("unknown scale '{other}'")),
                };
            }
            "--seed" => {
                cli.seed = next_val(&mut args, "--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--format" => {
                cli.json = match next_val(&mut args, "--format")?.as_str() {
                    "human" => false,
                    "json" => true,
                    other => return Err(format!("unknown format '{other}'")),
                };
            }
            "--deny" => cli.deny.parse_into(&next_val(&mut args, "--deny")?)?,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    let smp = cli.smp_certify || cli.smp_seeded_race || cli.smp_seeded_fbit;
    if cli.diff.is_some() && (!cli.apps.is_empty() || !cli.plans.is_empty() || smp) {
        return Err("--diff cannot be combined with lint targets".into());
    }
    if cli.litmus.is_some() && (!cli.apps.is_empty() || !cli.plans.is_empty() || smp) {
        return Err("--litmus cannot be combined with lint targets".into());
    }
    if cli.infer_hop_budget {
        if smp || cli.diff.is_some() {
            return Err("--infer-hop-budget only combines with --app/--plan targets".into());
        }
        if cli.apps.is_empty() && cli.plans.is_empty() {
            return Err("--infer-hop-budget needs at least one --app or --plan target".into());
        }
    }
    if cli.alias {
        if smp || cli.diff.is_some() || cli.litmus.is_some() {
            return Err("--alias-summary only combines with --app/--plan targets".into());
        }
        if cli.apps.is_empty() && cli.plans.is_empty() {
            return Err("--alias-summary needs at least one --app or --plan target".into());
        }
    }
    if cli.repair.is_some() && (cli.plans.len() != 1 || !cli.apps.is_empty() || smp) {
        return Err("--repair takes exactly one --plan target".into());
    }
    if cli.diff.is_none()
        && cli.litmus.is_none()
        && cli.apps.is_empty()
        && cli.plans.is_empty()
        && !smp
    {
        return Err(
            "nothing to lint: give --app, --plan, --smp-certify, --smp-seeded-race, \
             --smp-seeded-fbit, --litmus or --diff"
                .into(),
        );
    }
    Ok(cli)
}

/// `--infer-hop-budget`: for each target, report the minimum safe
/// `hard_hop_budget` and gate on the configured one. A budget of `none`
/// disables the machine's hop check entirely, so it always passes; a
/// cyclic plan fails under every finite budget.
fn run_infer(cli: &Cli) -> ! {
    struct Row {
        target: String,
        required: Option<u32>,
        configured: Option<u32>,
    }
    let mut rows: Vec<Row> = Vec::new();
    for &app in &cli.apps {
        let mut cfg = RunConfig::new(cli.variant);
        cfg.scale = cli.scale;
        cfg.seed = cli.seed;
        let cap = capture_app_plan(app, &cfg);
        let target = app_target(app, &cfg);
        let (_, required) = infer_hop_budget(&target, &cap.plan);
        rows.push(Row {
            target,
            required,
            configured: cap.plan.hard_hop_budget,
        });
    }
    for path in &cli.plans {
        let load = |r: Result<String, std::io::Error>| {
            r.unwrap_or_else(|e| {
                eprintln!("error: {}: {e}", path.display());
                std::process::exit(2);
            })
        };
        let text = load(std::fs::read_to_string(path));
        let plan = parse_plan(&text).unwrap_or_else(|e| {
            eprintln!("error: {}: {e}", path.display());
            std::process::exit(2);
        });
        let target = format!("plan:{}", path.display());
        let (_, required) = infer_hop_budget(&target, &plan);
        rows.push(Row {
            target,
            required,
            configured: plan.hard_hop_budget,
        });
    }

    let row_ok = |r: &Row| match (r.required, r.configured) {
        (None, _) => false,      // cyclic: no finite budget is safe
        (Some(_), None) => true, // hop check disabled: nothing to overrun
        (Some(req), Some(cfg)) => cfg >= req,
    };
    let mut failed = 0usize;
    if cli.json {
        let mut out = String::from("[\n");
        for (i, r) in rows.iter().enumerate() {
            let esc: String = r
                .target
                .chars()
                .flat_map(|c| match c {
                    '"' | '\\' => vec!['\\', c],
                    c => vec![c],
                })
                .collect();
            let fmt_opt = |v: Option<u32>| v.map_or("null".to_string(), |n| n.to_string());
            out.push_str(&format!(
                "  {{\"target\": \"{esc}\", \"min_safe_hop_budget\": {}, \"configured\": {}, \"cyclic\": {}, \"ok\": {}}}{}\n",
                fmt_opt(r.required),
                fmt_opt(r.configured),
                r.required.is_none(),
                row_ok(r),
                if i + 1 < rows.len() { "," } else { "" },
            ));
        }
        out.push_str("]\n");
        print!("{out}");
        failed = rows.iter().filter(|r| !row_ok(r)).count();
    } else {
        for r in &rows {
            let ok = row_ok(r);
            if !ok {
                failed += 1;
            }
            match r.required {
                None => println!(
                    "{}: no finite hard_hop_budget is safe (forwarding cycle, MF001)  [FAIL]",
                    r.target
                ),
                Some(req) => println!(
                    "{}: minimum safe hard_hop_budget = {req} (configured: {})  [{}]",
                    r.target,
                    r.configured.map_or("none".to_string(), |c| c.to_string()),
                    if ok { "ok" } else { "FAIL" },
                ),
            }
        }
    }
    if failed > 0 {
        eprintln!("memfwd_lint: {failed} target(s) with an unsafe hop budget");
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// Reads and parses a plan file, exiting 2 on I/O or syntax errors.
fn load_plan(path: &PathBuf) -> memfwd::RelocPlan {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: {}: {e}", path.display());
        std::process::exit(2);
    });
    parse_plan(&text).unwrap_or_else(|e| {
        eprintln!("error: {}: {e}", path.display());
        std::process::exit(2);
    })
}

/// `--litmus`: model-check one `.litmus` file, or every one in a
/// directory, under both memory models.
fn run_litmus(cli: &Cli, path: &PathBuf) -> ! {
    let mut files: Vec<PathBuf> = if path.is_dir() {
        let entries = std::fs::read_dir(path).unwrap_or_else(|e| {
            eprintln!("error: {}: {e}", path.display());
            std::process::exit(2);
        });
        entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "litmus"))
            .collect()
    } else {
        vec![path.clone()]
    };
    files.sort();
    if files.is_empty() {
        eprintln!("error: {}: no .litmus files", path.display());
        std::process::exit(2);
    }
    let mut results = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
            eprintln!("error: {}: {e}", file.display());
            std::process::exit(2);
        });
        let stem = file
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "litmus".to_string());
        let test = parse_litmus(&text, &stem).unwrap_or_else(|e| {
            eprintln!("error: {}: {e}", file.display());
            std::process::exit(2);
        });
        match check_litmus(&test) {
            Ok(result) => results.push(result),
            Err(e) => {
                eprintln!("error: {}: {e}", file.display());
                std::process::exit(2);
            }
        }
    }
    if cli.json {
        print!("{}", render_litmus_json(&results));
    } else {
        print!("{}", render_litmus_human(&results));
    }
    let failed = results.iter().filter(|r| !r.passed()).count();
    if failed > 0 {
        eprintln!("memfwd_lint: {failed} litmus test(s) failed");
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// `--alias-summary`: aliasing statistics for each target.
fn run_alias(cli: &Cli) -> ! {
    let mut summaries: Vec<AliasSummary> = Vec::new();
    for &app in &cli.apps {
        let mut cfg = RunConfig::new(cli.variant);
        cfg.scale = cli.scale;
        cfg.seed = cli.seed;
        let cap = capture_app_plan(app, &cfg);
        summaries.push(alias_summary(&app_target(app, &cfg), &cap.plan));
    }
    for path in &cli.plans {
        let plan = load_plan(path);
        summaries.push(alias_summary(&format!("plan:{}", path.display()), &plan));
    }
    if cli.json {
        print!("{}", render_alias_json(&summaries));
    } else {
        print!("{}", render_alias_human(&summaries));
    }
    std::process::exit(0);
}

/// `--repair`: terminal-rewrite the single `--plan` target and write the
/// re-verified result to `out`. The output file is written only when
/// the repaired plan certifies free of error-severity findings.
fn run_repair(cli: &Cli, out: &PathBuf) -> ! {
    let path = &cli.plans[0];
    let plan = load_plan(path);
    let target = format!("plan:{}", path.display());
    match repair_plan(&target, &plan) {
        RepairOutcome::AlreadyClean { report } => {
            std::fs::write(out, render_plan(&plan)).unwrap_or_else(|e| {
                eprintln!("error: {}: {e}", out.display());
                std::process::exit(2);
            });
            println!(
                "{target}: already clean ({:?}); copied unchanged",
                report.verdict()
            );
            std::process::exit(0);
        }
        RepairOutcome::Repaired {
            plan: repaired,
            edits,
            report,
        } => {
            std::fs::write(out, render_plan(&repaired)).unwrap_or_else(|e| {
                eprintln!("error: {}: {e}", out.display());
                std::process::exit(2);
            });
            println!(
                "{target}: repaired with {} edit(s), re-verified {:?}",
                edits.len(),
                report.verdict()
            );
            print!("{}", render_edits(&edits));
            std::process::exit(0);
        }
        RepairOutcome::Unrepairable { reason, report } => {
            print!("{}", render_human(&report));
            eprintln!("memfwd_lint: {target} is unrepairable: {reason}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };

    if let Some((old_path, new_path)) = &cli.diff {
        let load = |path: &PathBuf| {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("error: {}: {e}", path.display());
                std::process::exit(2);
            });
            parse_plan(&text).unwrap_or_else(|e| {
                eprintln!("error: {}: {e}", path.display());
                std::process::exit(2);
            })
        };
        let (old, new) = (load(old_path), load(new_path));
        let d = diff_plans(&old, &new);
        let (old_name, new_name) = (
            old_path.display().to_string(),
            new_path.display().to_string(),
        );
        if cli.json {
            print!("{}", render_diff_json(&old_name, &new_name, &d));
        } else {
            print!("{}", render_diff_human(&old_name, &new_name, &d));
        }
        std::process::exit(i32::from(!d.is_identical()));
    }

    if let Some(path) = &cli.litmus {
        run_litmus(&cli, path);
    }

    if cli.infer_hop_budget {
        run_infer(&cli);
    }

    if cli.alias {
        run_alias(&cli);
    }

    if let Some(out) = &cli.repair {
        run_repair(&cli, out);
    }

    let mut reports: Vec<Report> = Vec::new();
    for &app in &cli.apps {
        let mut cfg = RunConfig::new(cli.variant);
        cfg.scale = cli.scale;
        cfg.seed = cli.seed;
        let cap = capture_app_plan(app, &cfg);
        let mut report = verify_plan(&app_target(app, &cfg), &cap.plan);
        if let Err(fault) = &cap.result {
            // A faulted capture run is itself reportable: keep the static
            // findings (they explain the fault) and surface the abort.
            report.target = format!("{} [capture run faulted: {fault}]", report.target);
        }
        reports.push(report);
    }
    for path in &cli.plans {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: {}: {e}", path.display());
                std::process::exit(2);
            }
        };
        let plan = match parse_plan(&text) {
            Ok(plan) => plan,
            Err(e) => {
                eprintln!("error: {}: {e}", path.display());
                std::process::exit(2);
            }
        };
        reports.push(verify_plan(&format!("plan:{}", path.display()), &plan));
    }
    if cli.smp_certify {
        reports.extend(certify_stock_campaigns_model(cli.seed, cli.memory_model));
    }
    if cli.smp_seeded_race {
        let (name, cores, trace) = memfwd_analyze::race::seeded_race_campaign();
        reports.push(race_report(name, cores, &trace));
    }
    if cli.smp_seeded_fbit {
        for fenced in [false, true] {
            let (name, cores, trace) = memfwd_analyze::race::seeded_fbit_campaign(fenced);
            reports.push(race_report(name, cores, &trace));
        }
    }

    if cli.json {
        print!("{}", render_json(&reports, &cli.deny));
    } else {
        for r in &reports {
            print!("{}", render_human(r));
        }
    }
    let denied: usize = reports.iter().map(|r| cli.deny.denied(r).count()).sum();
    if denied > 0 {
        eprintln!("memfwd_lint: {denied} denied diagnostic(s)");
        std::process::exit(1);
    }
}
