//! Capturing relocation plans from the stock applications.
//!
//! An application run is its own plan generator: with the thread-local
//! capture hook armed, every `relocate()` the app performs is recorded,
//! and the resulting [`RelocPlan`] carries the run's heap bounds and hop
//! budget. Capture is host-side only, so the captured run is bit-identical
//! to a normal one — which is what lets `memfwd_sim --lint` certify the
//! very schedule it is about to execute.

use memfwd::{begin_plan_capture, take_captured_steps, MachineFault, RelocPlan};
use memfwd_apps::{run, App, AppOutput, RunConfig};

/// A captured application run: the plan it executed and how it ended.
#[derive(Debug)]
pub struct CapturedRun {
    /// The relocation schedule the run performed (possibly truncated at
    /// the step that faulted, which is included).
    pub plan: RelocPlan,
    /// The run's full output — checksum *and* statistics — or the typed
    /// fault that aborted it. Capture is host-side only, so this is
    /// bit-identical to an uncaptured run's output: a pre-flight caller
    /// that wants to execute the same configuration can reuse it instead
    /// of running the workload a second time.
    pub result: Result<AppOutput, MachineFault>,
}

/// Runs `app` under `cfg` with plan capture armed and returns the captured
/// plan together with the run's outcome.
pub fn capture_app_plan(app: App, cfg: &RunConfig) -> CapturedRun {
    begin_plan_capture();
    let result = run(app, cfg);
    let steps = take_captured_steps().unwrap_or_default();
    let mut plan = RelocPlan::new(cfg.sim.heap_base, cfg.sim.heap_capacity);
    plan.steps = steps;
    plan.hard_hop_budget = cfg.sim.hard_hop_budget;
    CapturedRun { plan, result }
}

/// `"app:<name>/<variant>"` — the report label for a captured app plan.
pub fn app_target(app: App, cfg: &RunConfig) -> String {
    format!("app:{}/{}", app.name(), cfg.variant.name())
}

#[cfg(test)]
mod tests {
    use super::*;
    use memfwd_apps::Variant;

    #[test]
    fn optimized_health_captures_a_nonempty_plan() {
        let cfg = RunConfig::new(Variant::Optimized).smoke();
        let cap = capture_app_plan(App::Health, &cfg);
        assert!(cap.result.is_ok(), "{:?}", cap.result);
        assert!(
            !cap.plan.steps.is_empty(),
            "the optimized variant must relocate"
        );
        assert!(cap.plan.pre.is_empty());
        assert_eq!(cap.plan.heap_base, cfg.sim.heap_base);
    }

    #[test]
    fn original_variant_captures_an_empty_plan() {
        let cfg = RunConfig::new(Variant::Original).smoke();
        let cap = capture_app_plan(App::Mst, &cfg);
        assert!(cap.result.is_ok());
        assert!(
            cap.plan.steps.is_empty(),
            "the original layout never relocates"
        );
    }
}
