//! Stable structural diffing of relocation plans.
//!
//! Layout optimizations are tuned by editing the relocation schedule; what
//! a reviewer needs is not two thousand-line plan files but the *delta*:
//! which steps changed, and did the safety-relevant envelope (heap bounds,
//! hop budget, pre-existing forwarding edges) move. [`diff_plans`]
//! computes that delta and `memfwd_lint --diff old.plan new.plan` renders
//! it, human or JSON.
//!
//! The step diff is the common-prefix/common-suffix trim: relocation
//! schedules are execution-ordered, so an edit is almost always a
//! localized splice, and trimming the identical head and tail isolates it
//! exactly. The result is *stable*: diffing the same two plans always
//! produces the same output, byte for byte, and a plan diffs against
//! itself as empty — both properties are pinned by tests, because CI
//! gates on the rendered form.

use memfwd::{RelocPlan, RelocStep};
use memfwd_tagmem::Addr;

/// The structural delta between two [`RelocPlan`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanDiff {
    /// Heap envelope change: `(old, new)` as `(base, capacity)` pairs.
    pub bounds: Option<((Addr, u64), (Addr, u64))>,
    /// Hard hop-budget change: `(old, new)`.
    pub budget: Option<(Option<u32>, Option<u32>)>,
    /// Pre-existing forwarding edges only the old plan declares, in the
    /// old plan's order.
    pub pre_removed: Vec<(Addr, Addr)>,
    /// Pre-existing forwarding edges only the new plan declares, in the
    /// new plan's order.
    pub pre_added: Vec<(Addr, Addr)>,
    /// Steps shared verbatim at the head of both schedules.
    pub common_prefix: usize,
    /// Steps shared verbatim at the tail of both schedules (disjoint from
    /// the prefix).
    pub common_suffix: usize,
    /// The old plan's spliced-out middle, in execution order.
    pub steps_removed: Vec<RelocStep>,
    /// The new plan's spliced-in middle, in execution order.
    pub steps_added: Vec<RelocStep>,
    /// Total step count of the old plan.
    pub old_steps: usize,
    /// Total step count of the new plan.
    pub new_steps: usize,
}

impl PlanDiff {
    /// Whether the two plans are structurally identical.
    pub fn is_identical(&self) -> bool {
        self.bounds.is_none()
            && self.budget.is_none()
            && self.pre_removed.is_empty()
            && self.pre_added.is_empty()
            && self.steps_removed.is_empty()
            && self.steps_added.is_empty()
    }
}

/// Multiset difference preserving first-occurrence order: every element of
/// `a` not matched one-for-one by an element of `b`.
fn multiset_minus<T: PartialEq + Clone>(a: &[T], b: &[T]) -> Vec<T> {
    let mut pool: Vec<&T> = b.iter().collect();
    a.iter()
        .filter(|x| match pool.iter().position(|y| *y == *x) {
            Some(i) => {
                pool.swap_remove(i);
                false
            }
            None => true,
        })
        .cloned()
        .collect()
}

/// Computes the structural delta from `old` to `new`.
pub fn diff_plans(old: &RelocPlan, new: &RelocPlan) -> PlanDiff {
    let bounds = ((old.heap_base, old.heap_capacity) != (new.heap_base, new.heap_capacity))
        .then_some((
            (old.heap_base, old.heap_capacity),
            (new.heap_base, new.heap_capacity),
        ));
    let budget = (old.hard_hop_budget != new.hard_hop_budget)
        .then_some((old.hard_hop_budget, new.hard_hop_budget));

    let prefix = old
        .steps
        .iter()
        .zip(&new.steps)
        .take_while(|(a, b)| a == b)
        .count();
    // The suffix must not reclaim steps already claimed by the prefix.
    let max_suffix = old.steps.len().min(new.steps.len()) - prefix;
    let suffix = old.steps[prefix..]
        .iter()
        .rev()
        .zip(new.steps[prefix..].iter().rev())
        .take(max_suffix)
        .take_while(|(a, b)| a == b)
        .count();

    PlanDiff {
        bounds,
        budget,
        pre_removed: multiset_minus(&old.pre, &new.pre),
        pre_added: multiset_minus(&new.pre, &old.pre),
        common_prefix: prefix,
        common_suffix: suffix,
        steps_removed: old.steps[prefix..old.steps.len() - suffix].to_vec(),
        steps_added: new.steps[prefix..new.steps.len() - suffix].to_vec(),
        old_steps: old.steps.len(),
        new_steps: new.steps.len(),
    }
}

fn step_line(prefix: char, index: usize, s: &RelocStep) -> String {
    format!(
        "  {prefix} [{index}] reloc {:#x} {:#x} {}\n",
        s.src.0, s.tgt.0, s.words
    )
}

/// Renders a diff for terminals, `diff -u` flavoured: `-` lines come from
/// `old_name`, `+` lines from `new_name`. Identical plans render a single
/// "identical" line.
pub fn render_diff_human(old_name: &str, new_name: &str, d: &PlanDiff) -> String {
    let mut out = format!("plan diff: {old_name} -> {new_name}\n");
    if d.is_identical() {
        out.push_str(&format!("  identical ({} steps)\n", d.old_steps));
        return out;
    }
    if let Some(((ob, oc), (nb, nc))) = d.bounds {
        out.push_str(&format!("  - bounds {:#x} {oc:#x}\n", ob.0));
        out.push_str(&format!("  + bounds {:#x} {nc:#x}\n", nb.0));
    }
    if let Some((o, n)) = d.budget {
        let fmt = |b: Option<u32>| match b {
            Some(b) => format!("budget {b}"),
            None => "no budget".to_string(),
        };
        out.push_str(&format!("  - {}\n", fmt(o)));
        out.push_str(&format!("  + {}\n", fmt(n)));
    }
    for &(w, t) in &d.pre_removed {
        out.push_str(&format!("  - pre {:#x} {:#x}\n", w.0, t.0));
    }
    for &(w, t) in &d.pre_added {
        out.push_str(&format!("  + pre {:#x} {:#x}\n", w.0, t.0));
    }
    if !d.steps_removed.is_empty() || !d.steps_added.is_empty() {
        out.push_str(&format!(
            "  @@ steps {}..{} of {} -> {}..{} of {} ({} common head, {} common tail)\n",
            d.common_prefix,
            d.old_steps - d.common_suffix,
            d.old_steps,
            d.common_prefix,
            d.new_steps - d.common_suffix,
            d.new_steps,
            d.common_prefix,
            d.common_suffix,
        ));
        for (i, s) in d.steps_removed.iter().enumerate() {
            out.push_str(&step_line('-', d.common_prefix + i, s));
        }
        for (i, s) in d.steps_added.iter().enumerate() {
            out.push_str(&step_line('+', d.common_prefix + i, s));
        }
    }
    out
}

fn json_steps(steps: &[RelocStep]) -> String {
    let items: Vec<String> = steps
        .iter()
        .map(|s| {
            format!(
                "{{ \"src\": {}, \"tgt\": {}, \"words\": {} }}",
                s.src.0, s.tgt.0, s.words
            )
        })
        .collect();
    format!("[{}]", items.join(", "))
}

fn json_edges(edges: &[(Addr, Addr)]) -> String {
    let items: Vec<String> = edges
        .iter()
        .map(|(w, t)| format!("{{ \"word\": {}, \"target\": {} }}", w.0, t.0))
        .collect();
    format!("[{}]", items.join(", "))
}

/// Renders a diff as a single stable JSON object (keys in fixed order,
/// machine-consumable in CI).
pub fn render_diff_json(old_name: &str, new_name: &str, d: &PlanDiff) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"old\": \"{old_name}\",\n  \"new\": \"{new_name}\",\n"
    ));
    out.push_str(&format!("  \"identical\": {},\n", d.is_identical()));
    match d.bounds {
        Some(((ob, oc), (nb, nc))) => out.push_str(&format!(
            "  \"bounds\": {{ \"old\": [{}, {oc}], \"new\": [{}, {nc}] }},\n",
            ob.0, nb.0
        )),
        None => out.push_str("  \"bounds\": null,\n"),
    }
    match d.budget {
        Some((o, n)) => {
            let j = |b: Option<u32>| b.map_or("null".to_string(), |b| b.to_string());
            out.push_str(&format!(
                "  \"budget\": {{ \"old\": {}, \"new\": {} }},\n",
                j(o),
                j(n)
            ));
        }
        None => out.push_str("  \"budget\": null,\n"),
    }
    out.push_str(&format!(
        "  \"pre_removed\": {},\n  \"pre_added\": {},\n",
        json_edges(&d.pre_removed),
        json_edges(&d.pre_added)
    ));
    out.push_str(&format!(
        "  \"common_prefix\": {},\n  \"common_suffix\": {},\n",
        d.common_prefix, d.common_suffix
    ));
    out.push_str(&format!(
        "  \"steps_removed\": {},\n  \"steps_added\": {},\n",
        json_steps(&d.steps_removed),
        json_steps(&d.steps_added)
    ));
    out.push_str(&format!(
        "  \"old_steps\": {},\n  \"new_steps\": {}\n}}\n",
        d.old_steps, d.new_steps
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(src: u64, tgt: u64, words: u64) -> RelocStep {
        RelocStep {
            src: Addr(src),
            tgt: Addr(tgt),
            words,
        }
    }

    fn base_plan() -> RelocPlan {
        let mut p = RelocPlan::new(Addr(0x10_000), 1 << 20);
        p.steps = vec![
            step(0x100, 0x200, 4),
            step(0x300, 0x400, 2),
            step(0x500, 0x600, 1),
            step(0x700, 0x800, 8),
        ];
        p
    }

    #[test]
    fn identical_plans_diff_empty() {
        let p = base_plan();
        let d = diff_plans(&p, &p);
        assert!(d.is_identical());
        assert_eq!(d.common_prefix, 4);
        assert_eq!(d.common_suffix, 0, "prefix claims everything first");
        assert!(render_diff_human("a", "b", &d).contains("identical (4 steps)"));
    }

    #[test]
    fn splice_is_isolated_by_prefix_suffix_trim() {
        let old = base_plan();
        let mut new = base_plan();
        // Replace the middle two steps with one different step.
        new.steps = vec![
            step(0x100, 0x200, 4),
            step(0x999, 0x1000, 3),
            step(0x700, 0x800, 8),
        ];
        let d = diff_plans(&old, &new);
        assert_eq!(d.common_prefix, 1);
        assert_eq!(d.common_suffix, 1);
        assert_eq!(
            d.steps_removed,
            vec![step(0x300, 0x400, 2), step(0x500, 0x600, 1)]
        );
        assert_eq!(d.steps_added, vec![step(0x999, 0x1000, 3)]);
        let human = render_diff_human("old", "new", &d);
        assert!(human.contains("- [1] reloc 0x300 0x400 2"));
        assert!(human.contains("+ [1] reloc 0x999 0x1000 3"));
    }

    #[test]
    fn repeated_steps_do_not_overlap_prefix_and_suffix() {
        // old = [A, A], new = [A]: the single common step must be claimed
        // once, not counted in both prefix and suffix.
        let mut old = RelocPlan::new(Addr(0), 1 << 20);
        old.steps = vec![step(8, 16, 1), step(8, 16, 1)];
        let mut new = old.clone();
        new.steps.pop();
        let d = diff_plans(&old, &new);
        assert_eq!(d.common_prefix + d.common_suffix, 1);
        assert_eq!(d.steps_removed.len(), 1);
        assert!(d.steps_added.is_empty());
    }

    #[test]
    fn envelope_and_pre_changes_are_reported() {
        let old = base_plan();
        let mut new = base_plan();
        new.heap_capacity = 1 << 21;
        new.hard_hop_budget = Some(8);
        new.pre.push((Addr(0x40), Addr(0x80)));
        let d = diff_plans(&old, &new);
        assert!(!d.is_identical());
        assert_eq!(d.bounds.map(|(_, (_, nc))| nc), Some(1 << 21));
        assert_eq!(d.budget, Some((None, Some(8))));
        assert_eq!(d.pre_added, vec![(Addr(0x40), Addr(0x80))]);
        assert!(d.pre_removed.is_empty());
        assert!(d.steps_removed.is_empty() && d.steps_added.is_empty());
    }

    #[test]
    fn rendering_is_stable() {
        let old = base_plan();
        let mut new = base_plan();
        new.steps.remove(2);
        let d1 = diff_plans(&old, &new);
        let d2 = diff_plans(&old, &new);
        assert_eq!(d1, d2);
        assert_eq!(
            render_diff_human("x", "y", &d1),
            render_diff_human("x", "y", &d2)
        );
        assert_eq!(
            render_diff_json("x", "y", &d1),
            render_diff_json("x", "y", &d2)
        );
    }

    #[test]
    fn json_has_fixed_keys_and_reports_the_delta() {
        let old = base_plan();
        let mut new = base_plan();
        new.steps[3] = step(0x700, 0x900, 8);
        let j = render_diff_json("old.plan", "new.plan", &diff_plans(&old, &new));
        for key in [
            "\"identical\": false",
            "\"bounds\": null",
            "\"budget\": null",
            "\"common_prefix\": 3",
            "\"common_suffix\": 0",
            "\"steps_removed\": [{ \"src\": 1792,",
            "\"old_steps\": 4",
        ] {
            assert!(j.contains(key), "missing {key} in:\n{j}");
        }
    }
}
