//! The static relocation-plan verifier.
//!
//! The verifier interprets a [`RelocPlan`] abstractly: it maintains the
//! forwarding-edge graph (word → forwarding address) that executing the
//! plan's steps would build, mirroring the machine's chain-append
//! semantics word for word — `relocate` walks a source word's chain to its
//! terminal, demand-stores the data through the *target's* chain, then
//! installs a terminal → target edge. On that graph it checks every
//! condition under which execution would fault or corrupt data, and a few
//! more that merely waste forwarding hops.
//!
//! ## Soundness claim
//!
//! Define executing a plan as: apply its `pre` edges, run every step
//! through `try_relocate` on a machine whose heap and hard hop budget
//! match the plan, then demand-load every word that appears in any step's
//! source or target range or as a `pre` edge source. **If the verifier
//! reports no error-severity diagnostic, that execution raises no
//! [`memfwd::MachineFault`].** The converse is deliberately not claimed: the
//! verifier is conservative (e.g. an out-of-bounds target is flagged even
//! though the sparse simulated memory happily absorbs the store). The
//! shadow sanitizer (`shadow` feature) cross-validates both directions at
//! runtime — see `crates/analyze/tests/`.

use crate::diag::{Code, Diagnostic, Report};
use memfwd::{RelocPlan, RelocStep};
use memfwd_tagmem::Addr;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Bound on identically-coded findings kept per report; past it the
/// finding list only grows a summary entry. Keeps pathological plans (a
/// million out-of-bounds steps) from drowning the report.
const MAX_PER_CODE: usize = 32;

struct Ctx {
    /// The forwarding graph: word address → forwarding address.
    fwd: HashMap<u64, u64>,
    diagnostics: Vec<Diagnostic>,
    per_code: HashMap<Code, usize>,
    /// (code, anchor-word) pairs already reported, for deduplication.
    seen: HashSet<(Code, u64)>,
    budget: Option<u32>,
    /// Deepest budget-checked walk seen (demand stores and the probe
    /// pass) — the basis of [`HopProfile::max_hops`].
    max_hops: u32,
}

impl Ctx {
    fn emit(&mut self, code: Code, step: Option<usize>, addr: Option<Addr>, message: String) {
        if let Some(a) = addr {
            if !self.seen.insert((code, a.0)) {
                return;
            }
        }
        let n = self.per_code.entry(code).or_insert(0);
        *n += 1;
        match (*n).cmp(&(MAX_PER_CODE + 1)) {
            std::cmp::Ordering::Less => self.diagnostics.push(Diagnostic {
                code,
                step,
                addr,
                message,
            }),
            std::cmp::Ordering::Equal => self.diagnostics.push(Diagnostic {
                code,
                step: None,
                addr: None,
                message: format!("further {code} findings suppressed after {MAX_PER_CODE}"),
            }),
            std::cmp::Ordering::Greater => {}
        }
    }

    /// Walks the chain from `start`. Returns `Ok((terminal, hops))`, or
    /// `Err(cycle_members)` when the walk revisits a word.
    fn walk(&self, start: Addr) -> Result<(Addr, u32), BTreeSet<u64>> {
        let mut cur = start.word_base().0;
        let mut seen = HashSet::new();
        seen.insert(cur);
        let mut hops = 0u32;
        while let Some(&next) = self.fwd.get(&cur) {
            let next = Addr(next).word_base().0;
            hops += 1;
            if !seen.insert(next) {
                // Extract the cyclic suffix for a canonical anchor.
                let mut members = BTreeSet::new();
                let mut w = next;
                loop {
                    if !members.insert(w) {
                        break;
                    }
                    match self.fwd.get(&w) {
                        Some(&n) => w = Addr(n).word_base().0,
                        None => break,
                    }
                }
                return Err(members);
            }
            cur = next;
        }
        Ok((Addr(cur), hops))
    }

    /// Reports a cycle (deduplicated by its smallest member).
    fn emit_cycle(&mut self, step: Option<usize>, entry: Addr, members: &BTreeSet<u64>) {
        let anchor = members.iter().next().copied().unwrap_or(entry.0);
        self.emit(
            Code::Mf001,
            step,
            Some(Addr(anchor)),
            format!(
                "forwarding chain through {:#x} is cyclic ({} words in the cycle)",
                entry.0,
                members.len()
            ),
        );
    }
}

fn ranges_overlap(a: Addr, b: Addr, words: u64) -> bool {
    let (a0, a1) = (a.0, a.0 + 8 * words);
    let (b0, b1) = (b.0, b.0 + 8 * words);
    a0 < b1 && b0 < a1
}

/// The hop-depth profile of a verified plan: how deep the chains the
/// machine would actually walk get.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopProfile {
    /// The deepest budget-checked walk (demand stores during execution
    /// plus the post-plan probe pass). Any `hard_hop_budget >= max_hops`
    /// admits every one of those walks; anything smaller faults. When the
    /// plan declares a budget and a walk overruns it, the plan aborts at
    /// that step, so the profile only covers walks up to the abort —
    /// infer on a budget-free copy of the plan for the full picture.
    pub max_hops: u32,
    /// A forwarding cycle exists (MF001): some walk never terminates, so
    /// *no* finite budget makes the plan safe.
    pub cyclic: bool,
}

impl HopProfile {
    /// The minimum `hard_hop_budget` under which every checked walk
    /// stays in budget, or `None` when a cycle makes every budget unsafe.
    pub fn min_safe_budget(&self) -> Option<u32> {
        if self.cyclic {
            None
        } else {
            Some(self.max_hops)
        }
    }
}

/// Verifies `plan`, producing a [`Report`] labelled `target`.
pub fn verify_plan(target: &str, plan: &RelocPlan) -> Report {
    verify_plan_with_hops(target, plan).0
}

/// Infers the minimum safe `hard_hop_budget` for `plan` by verifying a
/// budget-free copy (so no budget overrun can abort the measurement) and
/// profiling every walk the machine would budget-check. Returns the
/// budget-free report and the minimum safe budget (`None` if cyclic).
pub fn infer_hop_budget(target: &str, plan: &RelocPlan) -> (Report, Option<u32>) {
    let mut unbounded = plan.clone();
    unbounded.hard_hop_budget = None;
    let (report, profile) = verify_plan_with_hops(target, &unbounded);
    let min = profile.min_safe_budget();
    (report, min)
}

/// Verifies `plan` and additionally returns its [`HopProfile`].
pub fn verify_plan_with_hops(target: &str, plan: &RelocPlan) -> (Report, HopProfile) {
    let mut ctx = Ctx {
        fwd: HashMap::new(),
        diagnostics: Vec::new(),
        per_code: HashMap::new(),
        seen: HashSet::new(),
        budget: plan.hard_hop_budget,
        max_hops: 0,
    };
    // Words whose post-plan chains the soundness contract probes.
    let mut probes: BTreeSet<u64> = BTreeSet::new();

    for &(word, tgt) in &plan.pre {
        ctx.fwd.insert(word.word_base().0, tgt.0);
        probes.insert(word.word_base().0);
    }

    for (k, step) in plan.steps.iter().enumerate() {
        apply_step(&mut ctx, &mut probes, k, step, plan);
    }

    // Post-plan probe pass: every source, target, and pre word must still
    // be demand-accessible within the hop budget.
    let mut reported_deep: HashSet<u64> = HashSet::new();
    for &w in &probes {
        match ctx.walk(Addr(w)) {
            Ok((terminal, hops)) => {
                ctx.max_hops = ctx.max_hops.max(hops);
                if let Some(budget) = ctx.budget {
                    if hops > budget && reported_deep.insert(terminal.0) {
                        ctx.emit(
                            Code::Mf002,
                            None,
                            Some(Addr(w)),
                            format!(
                                "chain from {w:#x} is {hops} hops deep, over the hard \
                                 hop budget of {budget}"
                            ),
                        );
                    }
                }
            }
            Err(members) => ctx.emit_cycle(None, Addr(w), &members),
        }
    }

    let report = Report {
        target: target.to_string(),
        steps: plan.steps.len(),
        diagnostics: ctx.diagnostics,
    };
    let profile = HopProfile {
        max_hops: ctx.max_hops,
        cyclic: report.has(Code::Mf001),
    };
    (report, profile)
}

fn apply_step(
    ctx: &mut Ctx,
    probes: &mut BTreeSet<u64>,
    k: usize,
    step: &RelocStep,
    plan: &RelocPlan,
) {
    let RelocStep { src, tgt, words } = *step;
    // A step can carry both defects (e.g. misaligned source AND null
    // target); emit every one that applies, because which fault the machine
    // raises first is its business — the report must predict either.
    let mut rejected = false;
    if src.is_null() || tgt.is_null() {
        ctx.emit(
            Code::Mf007,
            Some(k),
            Some(if src.is_null() { src } else { tgt }),
            format!(
                "relocation with a null {} address",
                if src.is_null() { "source" } else { "target" }
            ),
        );
        rejected = true;
    }
    if !src.is_aligned(8) || !tgt.is_aligned(8) {
        let bad = if src.is_aligned(8) { tgt } else { src };
        ctx.emit(
            Code::Mf008,
            Some(k),
            Some(bad),
            format!(
                "{:#x} is not word-aligned; relocate() faults before moving data",
                bad.0
            ),
        );
        rejected = true;
    }
    if rejected {
        return; // the machine rejects the step before touching memory
    }
    if words == 0 {
        return; // a no-op step builds no edges
    }
    if ranges_overlap(src, tgt, words) {
        ctx.emit(
            Code::Mf003,
            Some(k),
            Some(src),
            format!(
                "source [{:#x}, {:#x}) overlaps target [{:#x}, {:#x}): the copy reads \
                 words the same step already overwrote",
                src.0,
                src.0 + 8 * words,
                tgt.0,
                tgt.0 + 8 * words
            ),
        );
    }
    let heap_end = plan.heap_base.0 + plan.heap_capacity;
    if tgt.0 < plan.heap_base.0 || tgt.0 + 8 * words > heap_end {
        ctx.emit(
            Code::Mf006,
            Some(k),
            Some(tgt),
            format!(
                "target [{:#x}, {:#x}) leaves the heap [{:#x}, {heap_end:#x})",
                tgt.0,
                tgt.0 + 8 * words,
                plan.heap_base.0
            ),
        );
    }

    let mut warned_double = false;
    let mut warned_fwd_tgt = false;
    for i in 0..words {
        let cur = src.add_words(i);
        let t = tgt.add_words(i);
        probes.insert(cur.0);
        probes.insert(t.0);

        if !warned_double && ctx.fwd.contains_key(&cur.0) {
            warned_double = true;
            ctx.emit(
                Code::Mf005,
                Some(k),
                Some(cur),
                format!(
                    "source word {:#x} is already forwarded: the chain is extended and \
                     every stale access pays an extra hop",
                    cur.0
                ),
            );
        }
        // Chain-append: find the source word's terminal.
        let terminal = match ctx.walk(cur) {
            Ok((terminal, _)) => terminal,
            Err(members) => {
                // try_relocate's cycle check fires here; the step (and the
                // plan, since relocate() panics) aborts.
                ctx.emit_cycle(Some(k), cur, &members);
                return;
            }
        };
        if !warned_fwd_tgt && ctx.fwd.contains_key(&t.0) {
            warned_fwd_tgt = true;
            ctx.emit(
                Code::Mf004,
                Some(k),
                Some(t),
                format!(
                    "target word {:#x} is already forwarded: the moved data lands at \
                     its chain terminal, not at {:#x} itself",
                    t.0, t.0
                ),
            );
        }
        // The data copy is a demand store through the target's chain.
        match ctx.walk(t) {
            Ok((_, hops)) => {
                ctx.max_hops = ctx.max_hops.max(hops);
                if let Some(budget) = ctx.budget {
                    if hops > budget {
                        ctx.emit(
                            Code::Mf002,
                            Some(k),
                            Some(t),
                            format!(
                                "the demand store to {:#x} walks {hops} hops, over the \
                                 hard hop budget of {budget}",
                                t.0
                            ),
                        );
                        return; // the store faults; the plan aborts
                    }
                }
            }
            Err(members) => {
                ctx.emit_cycle(Some(k), t, &members);
                return; // the store faults; the plan aborts
            }
        }
        // Installing terminal → t: does the target's chain lead back to the
        // terminal? Then this edge closes a cycle. (No fault fires at this
        // step — the store above completed before the edge existed — but
        // every later access through the chain faults; the probe pass
        // confirms it. Anchoring the finding at the step that closes the
        // cycle is what makes the diagnostic actionable.)
        let mut w = t.word_base().0;
        loop {
            if w == terminal.0 {
                ctx.emit(
                    Code::Mf001,
                    Some(k),
                    Some(terminal),
                    format!(
                        "installing the forwarding edge {:#x} -> {:#x} closes a cycle",
                        terminal.0, t.0
                    ),
                );
                break;
            }
            match ctx.fwd.get(&w) {
                Some(&n) => w = Addr(n).word_base().0,
                None => break,
            }
        }
        ctx.fwd.insert(terminal.0, t.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Verdict;

    fn plan(steps: &[(u64, u64, u64)]) -> RelocPlan {
        let mut p = RelocPlan::new(Addr(0x10_000), 1 << 31);
        p.steps = steps
            .iter()
            .map(|&(s, t, w)| RelocStep {
                src: Addr(s),
                tgt: Addr(t),
                words: w,
            })
            .collect();
        p
    }

    #[test]
    fn clean_plan_is_safe() {
        let p = plan(&[(0x10_000, 0x20_000, 4), (0x30_000, 0x40_000, 2)]);
        let r = verify_plan("t", &p);
        assert_eq!(r.verdict(), Verdict::Safe, "{r:?}");
        assert_eq!(r.steps, 2);
    }

    #[test]
    fn reciprocal_relocation_closes_a_cycle() {
        // relocate(a, b); relocate(b, a) — the second step's install edge
        // b -> a plus the existing a -> b is a cycle.
        let p = plan(&[(0x10_000, 0x10_008, 1), (0x10_008, 0x10_000, 1)]);
        let r = verify_plan("t", &p);
        assert!(r.has(Code::Mf001), "{r:?}");
        assert_eq!(r.verdict(), Verdict::Unsafe);
    }

    #[test]
    fn cyclic_pre_chain_is_flagged() {
        let mut p = plan(&[(0x10_000, 0x20_000, 1)]);
        p.pre = vec![
            (Addr(0x30_000), Addr(0x30_008)),
            (Addr(0x30_008), Addr(0x30_000)),
        ];
        let r = verify_plan("t", &p);
        assert!(r.has(Code::Mf001), "{r:?}");
    }

    #[test]
    fn deep_chain_overruns_a_declared_budget_only() {
        // w0 -> w1 -> ... -> w5 built link by link: each step relocates the
        // current terminal onto the next word, so no step re-relocates an
        // already-forwarded source (that would be MF005).
        let steps: Vec<(u64, u64, u64)> = (0..5)
            .map(|i| (0x10_000 + 8 * i, 0x10_008 + 8 * i, 1))
            .collect();
        let mut p = plan(&steps);
        assert_eq!(verify_plan("t", &p).verdict(), Verdict::Safe);
        p.hard_hop_budget = Some(3);
        let r = verify_plan("t", &p);
        assert!(r.has(Code::Mf002), "{r:?}");
        p.hard_hop_budget = Some(16);
        assert_eq!(verify_plan("t", &p).verdict(), Verdict::Safe);
    }

    #[test]
    fn overlap_double_reloc_and_forwarded_target() {
        let r = verify_plan("t", &plan(&[(0x10_000, 0x10_008, 2)]));
        assert!(r.has(Code::Mf003), "{r:?}");

        // Double relocation of the same source: warning, not error.
        let r = verify_plan(
            "t",
            &plan(&[(0x10_000, 0x20_000, 1), (0x10_000, 0x30_000, 1)]),
        );
        assert!(r.has(Code::Mf005), "{r:?}");
        assert_eq!(r.verdict(), Verdict::SafeWithWarnings);

        // Relocating onto a word that itself forwards.
        let r = verify_plan(
            "t",
            &plan(&[(0x20_000, 0x30_000, 1), (0x10_000, 0x20_000, 1)]),
        );
        assert!(r.has(Code::Mf004), "{r:?}");
        assert_eq!(r.verdict(), Verdict::SafeWithWarnings);
    }

    #[test]
    fn bounds_null_and_alignment() {
        let mut p = plan(&[(0x10_000, 0xff_ff00_0000, 1)]);
        assert!(verify_plan("t", &p).has(Code::Mf006));
        p = plan(&[(0x10_000, 0, 1)]);
        assert!(verify_plan("t", &p).has(Code::Mf007));
        p = plan(&[(0x10_004, 0x20_000, 1)]);
        assert!(verify_plan("t", &p).has(Code::Mf008));
    }

    #[test]
    fn inferred_budget_is_the_tight_bound() {
        // The deep-chain plan from above: w0 -> ... -> w5, deepest probe
        // walk is 5 hops.
        let steps: Vec<(u64, u64, u64)> = (0..5)
            .map(|i| (0x10_000 + 8 * i, 0x10_008 + 8 * i, 1))
            .collect();
        let p = plan(&steps);
        let (_, required) = infer_hop_budget("t", &p);
        let required = required.expect("acyclic");
        // Tightness both ways: the inferred budget passes, one less fails.
        let mut q = p.clone();
        q.hard_hop_budget = Some(required);
        assert_eq!(verify_plan("t", &q).verdict(), Verdict::Safe);
        assert!(required > 0);
        q.hard_hop_budget = Some(required - 1);
        assert!(verify_plan("t", &q).has(Code::Mf002));
    }

    #[test]
    fn inference_ignores_a_declared_budget_and_flags_cycles() {
        let steps: Vec<(u64, u64, u64)> = (0..5)
            .map(|i| (0x10_000 + 8 * i, 0x10_008 + 8 * i, 1))
            .collect();
        let mut p = plan(&steps);
        // A declared too-small budget must not truncate the measurement.
        p.hard_hop_budget = Some(1);
        let (report, required) = infer_hop_budget("t", &p);
        assert!(!report.has(Code::Mf002), "{report:?}");
        assert!(required.expect("acyclic") > 1);

        // A cyclic plan has no finite safe budget.
        let cyc = plan(&[(0x10_000, 0x10_008, 1), (0x10_008, 0x10_000, 1)]);
        let (report, required) = infer_hop_budget("t", &cyc);
        assert!(report.has(Code::Mf001));
        assert_eq!(required, None);
    }

    #[test]
    fn flood_of_findings_is_capped() {
        // 100 distinct misaligned sources (distinct anchors defeat the
        // duplicate filter, so only the per-code cap bounds the list).
        let steps: Vec<(u64, u64, u64)> =
            (0..100).map(|i| (0x10_004 + 16 * i, 0x20_000, 1)).collect();
        let r = verify_plan("t", &plan(&steps));
        let n_mf008 = r
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::Mf008)
            .count();
        assert!(n_mf008 <= MAX_PER_CODE + 1, "{n_mf008}");
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.message.contains("suppressed")),
            "{r:?}"
        );
    }
}
