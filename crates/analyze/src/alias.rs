//! Aliasing statistics for relocation plans (`--alias-summary`).
//!
//! Relocation safety hinges on which words a plan's steps touch more
//! than once: a word that is both a source and a later target aliases
//! through the forwarding graph, and overlapping step ranges are where
//! MF003/MF004/MF005 findings come from. This module reduces a plan to
//! the aliasing shape a layout optimizer cares about — how many words
//! are shared between steps, how hot the hottest word is, and how many
//! step pairs overlap at all — without re-running the verifier.

use memfwd::RelocPlan;
use std::collections::{BTreeMap, HashSet};

/// Aliasing statistics for one plan. All word counts are in 8-byte
/// word-base units; a step contributes both its source range and its
/// target range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AliasSummary {
    /// Label of the summarized plan (app target or plan file).
    pub target: String,
    /// Number of relocation steps.
    pub steps: usize,
    /// Total words across all source+target ranges, counted with
    /// multiplicity.
    pub words_touched: u64,
    /// Distinct words across all source+target ranges.
    pub distinct_words: usize,
    /// Distinct words touched by more than one step.
    pub shared_words: usize,
    /// Unordered step pairs that touch at least one common word.
    pub overlapping_pairs: usize,
    /// Steps whose own source and target ranges overlap (MF003 shape).
    pub self_overlapping_steps: usize,
    /// Steps whose source word doubles as another step's target word —
    /// the handoff pattern that builds multi-hop chains.
    pub src_tgt_aliased_steps: usize,
    /// Most steps touching any single word, with that word.
    pub hottest: Option<(u64, usize)>,
    /// Pre-existing forwarding edges declared by the plan.
    pub pre_edges: usize,
}

fn ranges_overlap(a0: u64, aw: u64, b0: u64, bw: u64) -> bool {
    a0 < b0 + 8 * bw && b0 < a0 + 8 * aw
}

/// Computes the [`AliasSummary`] of `plan`.
pub fn alias_summary(target: &str, plan: &RelocPlan) -> AliasSummary {
    // word base -> distinct steps touching it
    let mut by_word: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let mut words_touched = 0u64;
    let mut self_overlapping_steps = 0usize;
    let mut tgt_words: HashSet<u64> = HashSet::new();

    for (k, s) in plan.steps.iter().enumerate() {
        words_touched += 2 * s.words;
        if s.words > 0 && ranges_overlap(s.src.0, s.words, s.tgt.0, s.words) {
            self_overlapping_steps += 1;
        }
        for i in 0..s.words {
            for w in [
                s.src.add_words(i).word_base().0,
                s.tgt.add_words(i).word_base().0,
            ] {
                let steps = by_word.entry(w).or_default();
                if steps.last() != Some(&k) {
                    steps.push(k);
                }
            }
            tgt_words.insert(s.tgt.add_words(i).word_base().0);
        }
    }

    let shared_words = by_word.values().filter(|v| v.len() > 1).count();
    let hottest = by_word
        .iter()
        .max_by_key(|(_, v)| v.len())
        .filter(|(_, v)| !v.is_empty())
        .map(|(&w, v)| (w, v.len()));

    let mut pairs: HashSet<(usize, usize)> = HashSet::new();
    for steps in by_word.values() {
        for (i, &a) in steps.iter().enumerate() {
            for &b in &steps[i + 1..] {
                pairs.insert((a.min(b), a.max(b)));
            }
        }
    }

    let src_tgt_aliased_steps = plan
        .steps
        .iter()
        .filter(|s| (0..s.words).any(|i| tgt_words.contains(&s.src.add_words(i).word_base().0)))
        .count();

    AliasSummary {
        target: target.to_string(),
        steps: plan.steps.len(),
        words_touched,
        distinct_words: by_word.len(),
        shared_words,
        overlapping_pairs: pairs.len(),
        self_overlapping_steps,
        src_tgt_aliased_steps,
        hottest,
        pre_edges: plan.pre.len(),
    }
}

/// Renders summaries for humans, one block per plan.
pub fn render_alias_human(summaries: &[AliasSummary]) -> String {
    let mut out = String::new();
    for s in summaries {
        out.push_str(&format!(
            "{}: {} steps, {} pre-edges\n",
            s.target, s.steps, s.pre_edges
        ));
        out.push_str(&format!(
            "  words: {} touched ({} distinct, {} shared by >1 step)\n",
            s.words_touched, s.distinct_words, s.shared_words
        ));
        out.push_str(&format!(
            "  overlap: {} step pair(s) share words, {} step(s) self-overlap, \
             {} step(s) read another step's target\n",
            s.overlapping_pairs, s.self_overlapping_steps, s.src_tgt_aliased_steps
        ));
        match s.hottest {
            Some((w, n)) => out.push_str(&format!("  hottest word: {w:#x} ({n} steps)\n")),
            None => out.push_str("  hottest word: none (empty plan)\n"),
        }
    }
    out
}

/// Renders summaries as a JSON array (no external dependencies; targets
/// are escaped for quotes and backslashes).
pub fn render_alias_json(summaries: &[AliasSummary]) -> String {
    let mut out = String::from("[\n");
    for (i, s) in summaries.iter().enumerate() {
        let esc: String = s
            .target
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                c => vec![c],
            })
            .collect();
        let hottest = match s.hottest {
            Some((w, n)) => format!("{{\"word\": {w}, \"steps\": {n}}}"),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "  {{\"target\": \"{esc}\", \"steps\": {}, \"pre_edges\": {}, \
             \"words_touched\": {}, \"distinct_words\": {}, \"shared_words\": {}, \
             \"overlapping_pairs\": {}, \"self_overlapping_steps\": {}, \
             \"src_tgt_aliased_steps\": {}, \"hottest\": {hottest}}}{}\n",
            s.steps,
            s.pre_edges,
            s.words_touched,
            s.distinct_words,
            s.shared_words,
            s.overlapping_pairs,
            s.self_overlapping_steps,
            s.src_tgt_aliased_steps,
            if i + 1 < summaries.len() { "," } else { "" },
        ));
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use memfwd::RelocStep;
    use memfwd_tagmem::Addr;

    fn plan(steps: &[(u64, u64, u64)]) -> RelocPlan {
        let mut p = RelocPlan::new(Addr(0x10_000), 1 << 20);
        p.steps = steps
            .iter()
            .map(|&(s, t, w)| RelocStep {
                src: Addr(s),
                tgt: Addr(t),
                words: w,
            })
            .collect();
        p
    }

    #[test]
    fn disjoint_steps_share_nothing() {
        let s = alias_summary(
            "t",
            &plan(&[(0x10_000, 0x20_000, 2), (0x30_000, 0x40_000, 2)]),
        );
        assert_eq!(s.steps, 2);
        assert_eq!(s.words_touched, 8);
        assert_eq!(s.distinct_words, 8);
        assert_eq!(s.shared_words, 0);
        assert_eq!(s.overlapping_pairs, 0);
        assert_eq!(s.self_overlapping_steps, 0);
        assert_eq!(s.src_tgt_aliased_steps, 0);
        assert_eq!(s.hottest.map(|(_, n)| n), Some(1));
    }

    #[test]
    fn handoff_chains_and_hot_words_are_counted() {
        // a -> b, b -> c, a -> d: word a is touched by steps 0 and 2,
        // word b by steps 0 and 1; step 1 reads step 0's target and
        // step 0 reads step 2's... no — src a is also step 2's src.
        let s = alias_summary(
            "t",
            &plan(&[
                (0x10_000, 0x10_008, 1),
                (0x10_008, 0x10_010, 1),
                (0x10_000, 0x10_018, 1),
            ]),
        );
        assert_eq!(s.shared_words, 2); // a (steps 0,2) and b (steps 0,1)
        assert_eq!(s.overlapping_pairs, 2); // (0,1) via b and (0,2) via a
        assert_eq!(s.src_tgt_aliased_steps, 1); // step 1: src b is step 0's tgt
        let (w, n) = s.hottest.unwrap();
        assert_eq!(n, 2);
        assert!(w == 0x10_000 || w == 0x10_008);
    }

    #[test]
    fn self_overlap_is_flagged() {
        let s = alias_summary("t", &plan(&[(0x10_000, 0x10_008, 2)]));
        assert_eq!(s.self_overlapping_steps, 1);
        // The middle word is src[1] and tgt[0] of the SAME step, so it is
        // not "shared between steps" — but it is a src/tgt alias.
        assert_eq!(s.shared_words, 0);
        assert_eq!(s.src_tgt_aliased_steps, 1);
    }

    #[test]
    fn a_step_touching_a_word_twice_is_one_toucher() {
        // src and tgt word sets of different steps are deduplicated per
        // step: a single self-overlapping step never inflates shared
        // counts into pair counts.
        let s = alias_summary("t", &plan(&[(0x10_000, 0x10_008, 2)]));
        assert_eq!(s.overlapping_pairs, 0);
        assert_eq!(s.hottest.map(|(_, n)| n), Some(1));
    }

    #[test]
    fn renders_are_stable() {
        let plans = [
            alias_summary("empty", &plan(&[])),
            alias_summary("one \"quoted\"", &plan(&[(0x10_000, 0x20_000, 1)])),
        ];
        let human = render_alias_human(&plans);
        assert!(human.contains("empty: 0 steps"));
        assert!(human.contains("hottest word: none"));
        let json = render_alias_json(&plans);
        assert!(json.contains("\"target\": \"one \\\"quoted\\\"\""));
        assert!(json.contains("\"hottest\": null"));
        assert!(json.trim_end().ends_with(']'));
    }
}
