//! **Static analysis for memory forwarding**: a relocation-plan safety
//! verifier, a clippy-style diagnostic engine with stable `MF0xx` codes,
//! and an SMP happens-before race certifier.
//!
//! The paper argues that relocation safety cannot be proven statically *in
//! general* — hardware forwarding guarantees it dynamically (§2, §3.2).
//! But once a concrete relocation **schedule** exists (captured from a run
//! or written as a plan file), its forwarding-chain graph is a finite
//! object that can be checked before simulation. This crate is that
//! checker:
//!
//! - [`verify::verify_plan`] — abstract interpretation of a
//!   [`memfwd::RelocPlan`] over the forwarding-edge graph, detecting
//!   cycles, hop-budget overruns, overlapping ranges, forwarded targets,
//!   double relocations, out-of-bounds targets, null and misaligned
//!   addresses;
//! - [`diag`] — stable codes ([`diag::Code`]), severities, the verdict
//!   lattice (`Safe < SafeWithWarnings < Unsafe`), human/JSON rendering,
//!   and the `--deny` gate;
//! - [`capture`] — plan capture from the eight stock applications;
//! - [`planfile`] — a tiny text format for synthetic plans and fixtures;
//! - [`plandiff`] — stable structural diffing of two plans, fronted by
//!   `memfwd_lint --diff old.plan new.plan`;
//! - [`race`] — vector-clock happens-before race detection over
//!   [`memfwd::SmpEvent`] traces, with barrier-disciplined stock campaigns
//!   and a seeded racy one;
//! - [`shadow`] (feature `shadow`, default on) — the shadow sanitizer
//!   cross-validating static verdicts against real executions.
//!
//! The `memfwd_lint` binary fronts all of it; `memfwd_sim --lint` runs the
//! verifier as a pre-flight over the exact schedule it is about to
//! execute.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Same discipline as the core crates: bare `unwrap()` is test-only.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod alias;
pub mod capture;
pub mod diag;
pub mod litmus;
pub mod plandiff;
pub mod planfile;
pub mod race;
pub mod repair;
#[cfg(feature = "shadow")]
pub mod shadow;
pub mod verify;

pub use alias::{alias_summary, render_alias_human, render_alias_json, AliasSummary};
pub use capture::{app_target, capture_app_plan, CapturedRun};
pub use diag::{render_human, render_json, Code, DenySet, Diagnostic, Report, Severity, Verdict};
pub use litmus::{
    certify_litmus, check_litmus, parse_litmus, render_litmus_human, render_litmus_json,
    LitmusResult, LitmusTest,
};
pub use plandiff::{diff_plans, render_diff_human, render_diff_json, PlanDiff};
pub use planfile::{parse_plan, render_plan};
pub use race::{
    analyze_trace, certify_stock_campaigns, certify_stock_campaigns_model, find_races, race_report,
    seeded_fbit_campaign, seeded_race_campaign, stock_campaigns_model, HandoffFinding, RaceFinding,
    SkewFinding, TraceAnalysis,
};
pub use repair::{render_edits, repair_plan, RepairEdit, RepairOutcome};
pub use verify::{infer_hop_budget, verify_plan, verify_plan_with_hops, HopProfile};
