//! The diagnostic engine: stable codes, severities, verdicts, reports, and
//! the `--deny` gate.
//!
//! Codes are append-only and never renumbered — scripts and CI gates key
//! off them. Each code has a fixed severity: **errors** describe plans that
//! fault or silently corrupt data when executed; **warnings** describe
//! plans that execute correctly but pay for it (extra hops) or look like
//! schedule bugs.

use memfwd_tagmem::Addr;
use std::fmt;

/// A stable diagnostic code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Code {
    /// Forwarding-chain cycle: an access through the chain would raise
    /// `MachineFault::ForwardingCycle` (or `HopLimitExceeded` first, when a
    /// hard budget is declared).
    Mf001,
    /// Chain deeper than the declared hard hop budget: an access would
    /// raise `MachineFault::HopLimitExceeded`.
    Mf002,
    /// Source and target ranges of one step overlap: the word-by-word copy
    /// reads words the same step already overwrote — silent corruption.
    Mf003,
    /// Relocation target is already a forwarded word: the moved data is
    /// stored *through* the target's chain, landing at its terminal rather
    /// than at the named address.
    Mf004,
    /// Source word is already forwarded (double relocation): legal — the
    /// chain is extended — but every stale access now pays an extra hop.
    Mf005,
    /// Relocation target outside the declared heap: the store lands in
    /// unmanaged address space.
    Mf006,
    /// Null source or target address: the demand store raises
    /// `MachineFault::NullDeref`.
    Mf007,
    /// Misaligned source or target: `relocate` raises
    /// `MachineFault::Misaligned` before moving anything.
    Mf008,
    /// SMP data race: two cores access the same word, at least one a store,
    /// with no barrier ordering them.
    Mf009,
    /// Unfenced fbit publication: under TSO a forwarding-bit install races
    /// a remote access to the same word through the installer's store
    /// buffer — the remote core can read the stale, un-forwarded word.
    Mf010,
    /// Buffered-store read skew: a remote core loads a word while another
    /// core still holds an undrained buffered store to it, observing the
    /// pre-store value after the storing core already sees the new one.
    Mf011,
    /// Missing release before relocation handoff: a relocated object is
    /// accessed by another core with no release/unlock/barrier by the
    /// relocating core between the install and the first remote access.
    Mf012,
}

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious or costly, but executes correctly.
    Warning,
    /// Faults at runtime or corrupts data silently.
    Error,
}

impl Code {
    /// Every defined code, in numeric order.
    pub const ALL: [Code; 12] = [
        Code::Mf001,
        Code::Mf002,
        Code::Mf003,
        Code::Mf004,
        Code::Mf005,
        Code::Mf006,
        Code::Mf007,
        Code::Mf008,
        Code::Mf009,
        Code::Mf010,
        Code::Mf011,
        Code::Mf012,
    ];

    /// The stable code string, e.g. `"MF001"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Mf001 => "MF001",
            Code::Mf002 => "MF002",
            Code::Mf003 => "MF003",
            Code::Mf004 => "MF004",
            Code::Mf005 => "MF005",
            Code::Mf006 => "MF006",
            Code::Mf007 => "MF007",
            Code::Mf008 => "MF008",
            Code::Mf009 => "MF009",
            Code::Mf010 => "MF010",
            Code::Mf011 => "MF011",
            Code::Mf012 => "MF012",
        }
    }

    /// Parses a code string (case-insensitive).
    pub fn parse(s: &str) -> Option<Code> {
        Code::ALL
            .into_iter()
            .find(|c| c.as_str().eq_ignore_ascii_case(s))
    }

    /// Short human title.
    pub fn title(self) -> &'static str {
        match self {
            Code::Mf001 => "forwarding-chain cycle",
            Code::Mf002 => "hop-budget overrun",
            Code::Mf003 => "overlapping source/target ranges",
            Code::Mf004 => "relocation onto a forwarded word",
            Code::Mf005 => "double relocation of a source word",
            Code::Mf006 => "relocation target out of heap bounds",
            Code::Mf007 => "null source or target",
            Code::Mf008 => "misaligned source or target",
            Code::Mf009 => "SMP data race",
            Code::Mf010 => "unfenced fbit publication",
            Code::Mf011 => "buffered-store read skew",
            Code::Mf012 => "missing release before relocation handoff",
        }
    }

    /// The fixed severity of this code.
    pub fn severity(self) -> Severity {
        match self {
            Code::Mf004 | Code::Mf005 | Code::Mf011 | Code::Mf012 => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// The `MachineFault::kind()` strings an error of this code predicts at
    /// runtime. `budgeted` says whether the plan declares a hard hop
    /// budget, which can trip before a cycle check does.
    pub fn predicted_fault_kinds(self, budgeted: bool) -> &'static [&'static str] {
        match (self, budgeted) {
            (Code::Mf001, false) => &["forwarding-cycle"],
            (Code::Mf001, true) => &["forwarding-cycle", "hop-limit-exceeded"],
            (Code::Mf002, _) => &["hop-limit-exceeded"],
            (Code::Mf007, _) => &["null-deref"],
            (Code::Mf008, _) => &["misaligned"],
            // MF003/MF006 are silent at runtime; MF004/MF005 are warnings;
            // MF009-MF012 concern the SMP model, not a uniprocessor fault.
            _ => &[],
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// Index of the plan step at fault, if the finding anchors to one.
    pub step: Option<usize>,
    /// The address the finding anchors to, if any.
    pub addr: Option<Addr>,
    /// Human-readable detail.
    pub message: String,
}

impl Diagnostic {
    /// The diagnostic's severity (fixed per code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity(),
            self.code,
            self.code.title(),
            self.message
        )?;
        if let Some(step) = self.step {
            write!(f, " (step {step})")?;
        }
        Ok(())
    }
}

/// The verdict lattice: `Safe < SafeWithWarnings < Unsafe`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// No diagnostics: certified — execution cannot fault.
    Safe,
    /// Warnings only: certified fault-free, but the schedule is suspicious
    /// or pays avoidable forwarding cost.
    SafeWithWarnings,
    /// At least one error: execution faults or corrupts data.
    Unsafe,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::Safe => "safe",
            Verdict::SafeWithWarnings => "safe-with-warnings",
            Verdict::Unsafe => "unsafe",
        })
    }
}

/// Everything the verifier concluded about one target (an app's captured
/// plan, a plan file, or an SMP campaign).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// What was analyzed, e.g. `app:health/optimized` or `plan:cycle.plan`.
    pub target: String,
    /// Number of relocation steps analyzed (0 for SMP campaigns).
    pub steps: usize,
    /// All findings, in discovery order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Folds the diagnostics into the verdict lattice.
    pub fn verdict(&self) -> Verdict {
        let mut v = Verdict::Safe;
        for d in &self.diagnostics {
            v = v.max(match d.severity() {
                Severity::Warning => Verdict::SafeWithWarnings,
                Severity::Error => Verdict::Unsafe,
            });
        }
        v
    }

    /// True if any diagnostic carries `code`.
    pub fn has(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// The error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
    }
}

/// The `--deny` gate: which diagnostics fail the lint run.
///
/// Errors always deny — an unsafe plan is never waved through. Warnings
/// deny only when listed (or when `all` is set).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DenySet {
    /// Deny every diagnostic, warnings included.
    pub all: bool,
    /// Additional codes to deny.
    pub codes: Vec<Code>,
}

impl DenySet {
    /// Parses a comma-separated `--deny` value (`all` or code list),
    /// merging into `self`.
    pub fn parse_into(&mut self, value: &str) -> Result<(), String> {
        for item in value.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            if item.eq_ignore_ascii_case("all") {
                self.all = true;
            } else {
                let code =
                    Code::parse(item).ok_or_else(|| format!("unknown diagnostic code '{item}'"))?;
                if !self.codes.contains(&code) {
                    self.codes.push(code);
                }
            }
        }
        Ok(())
    }

    /// Does this gate fail on `d`?
    pub fn denies(&self, d: &Diagnostic) -> bool {
        d.severity() == Severity::Error || self.all || self.codes.contains(&d.code)
    }

    /// The diagnostics of `report` this gate fails on.
    pub fn denied<'r>(&'r self, report: &'r Report) -> impl Iterator<Item = &'r Diagnostic> {
        report.diagnostics.iter().filter(move |d| self.denies(d))
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one report as human-readable text.
pub fn render_human(report: &Report) -> String {
    let mut out = format!(
        "{}: {} ({} steps, {} diagnostics)\n",
        report.target,
        report.verdict(),
        report.steps,
        report.diagnostics.len()
    );
    for d in &report.diagnostics {
        out.push_str(&format!("  {d}\n"));
    }
    out
}

/// Renders a set of reports as one JSON document (hand-rolled: the
/// workspace is offline and carries no serde).
pub fn render_json(reports: &[Report], deny: &DenySet) -> String {
    let mut out = String::from("{\n  \"reports\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"target\": \"{}\", \"verdict\": \"{}\", \"steps\": {}, \"diagnostics\": [",
            json_escape(&r.target),
            r.verdict(),
            r.steps
        ));
        for (j, d) in r.diagnostics.iter().enumerate() {
            out.push_str(&format!(
                "\n      {{\"code\": \"{}\", \"severity\": \"{}\", \"title\": \"{}\", \
                 \"step\": {}, \"addr\": {}, \"message\": \"{}\", \"denied\": {}}}{}",
                d.code,
                d.severity(),
                json_escape(d.code.title()),
                d.step.map_or("null".into(), |s| s.to_string()),
                d.addr.map_or("null".into(), |a| format!("\"{:#x}\"", a.0)),
                json_escape(&d.message),
                deny.denies(d),
                if j + 1 < r.diagnostics.len() { "," } else { "" }
            ));
        }
        if !r.diagnostics.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str(&format!(
            "]}}{}\n",
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    let denied = reports
        .iter()
        .map(|r| deny.denied(r).count())
        .sum::<usize>();
    out.push_str(&format!("  ],\n  \"denied\": {denied}\n}}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(code: Code) -> Diagnostic {
        Diagnostic {
            code,
            step: Some(1),
            addr: Some(Addr(0x10_000)),
            message: "test".into(),
        }
    }

    #[test]
    fn codes_round_trip_and_have_metadata() {
        for code in Code::ALL {
            assert_eq!(Code::parse(code.as_str()), Some(code));
            assert_eq!(Code::parse(&code.as_str().to_lowercase()), Some(code));
            assert!(!code.title().is_empty());
        }
        assert_eq!(Code::parse("MF999"), None);
    }

    #[test]
    fn verdict_lattice_orders() {
        assert!(Verdict::Safe < Verdict::SafeWithWarnings);
        assert!(Verdict::SafeWithWarnings < Verdict::Unsafe);
        let mut r = Report {
            target: "t".into(),
            steps: 0,
            diagnostics: vec![],
        };
        assert_eq!(r.verdict(), Verdict::Safe);
        r.diagnostics.push(diag(Code::Mf005));
        assert_eq!(r.verdict(), Verdict::SafeWithWarnings);
        r.diagnostics.push(diag(Code::Mf001));
        assert_eq!(r.verdict(), Verdict::Unsafe);
    }

    #[test]
    fn deny_gate_semantics() {
        let mut deny = DenySet::default();
        assert!(deny.denies(&diag(Code::Mf001)), "errors always deny");
        assert!(!deny.denies(&diag(Code::Mf005)));
        deny.parse_into("mf005").unwrap();
        assert!(deny.denies(&diag(Code::Mf005)));
        assert!(!deny.denies(&diag(Code::Mf004)));
        deny.parse_into("all").unwrap();
        assert!(deny.denies(&diag(Code::Mf004)));
        assert!(DenySet::default().parse_into("MF123").is_err());
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = Report {
            target: "app:health/optimized".into(),
            steps: 3,
            diagnostics: vec![diag(Code::Mf001), diag(Code::Mf005)],
        };
        let json = render_json(&[r], &DenySet::default());
        assert!(json.contains("\"MF001\""));
        assert!(json.contains("\"denied\": 1"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces: {json}"
        );
        let empty = render_json(&[], &DenySet::default());
        assert!(empty.contains("\"denied\": 0"));
    }
}
