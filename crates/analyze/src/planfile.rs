//! A tiny line-oriented text format for relocation plans, used by the
//! seeded-defect fixtures and the `memfwd_lint --plan` entry point.
//!
//! ```text
//! # comment
//! bounds 0x10000 0x80000000      # heap base, capacity (defaults shown)
//! budget 8                       # hard hop budget (default: none)
//! pre 0x20000 0x20100            # pre-existing forwarding edge
//! reloc 0x20000 0x30000 4        # relocate 4 words from src to tgt
//! ```
//!
//! Numbers are decimal or `0x`-prefixed hex. Directives may appear in any
//! order; `reloc` lines execute in file order.

use memfwd::{RelocPlan, RelocStep};
use memfwd_tagmem::Addr;

fn parse_num(s: &str) -> Result<u64, String> {
    let r = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    r.map_err(|_| format!("bad number '{s}'"))
}

/// Parses the plan format described in the module docs.
///
/// # Errors
///
/// A human-readable message naming the offending line.
pub fn parse_plan(text: &str) -> Result<RelocPlan, String> {
    let mut plan = RelocPlan::new(Addr(0x10_000), 1 << 31);
    for (no, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| format!("line {}: {msg}", no + 1);
        let fields: Vec<&str> = line.split_whitespace().collect();
        let args: Result<Vec<u64>, String> = fields[1..].iter().map(|f| parse_num(f)).collect();
        let args = args.map_err(err)?;
        let want = |n: usize| -> Result<(), String> {
            if args.len() == n {
                Ok(())
            } else {
                Err(format!(
                    "line {}: '{}' takes {n} arguments, got {}",
                    no + 1,
                    fields[0],
                    args.len()
                ))
            }
        };
        match fields[0] {
            "bounds" => {
                want(2)?;
                plan.heap_base = Addr(args[0]);
                plan.heap_capacity = args[1];
            }
            "budget" => {
                want(1)?;
                let b = u32::try_from(args[0])
                    .map_err(|_| format!("line {}: budget out of range", no + 1))?;
                plan.hard_hop_budget = Some(b);
            }
            "pre" => {
                want(2)?;
                plan.pre.push((Addr(args[0]).word_base(), Addr(args[1])));
            }
            "reloc" => {
                want(3)?;
                plan.steps.push(RelocStep {
                    src: Addr(args[0]),
                    tgt: Addr(args[1]),
                    words: args[2],
                });
            }
            other => return Err(format!("line {}: unknown directive '{other}'", no + 1)),
        }
    }
    Ok(plan)
}

/// Renders `plan` in the format [`parse_plan`] reads.
pub fn render_plan(plan: &RelocPlan) -> String {
    let mut out = format!("bounds {:#x} {:#x}\n", plan.heap_base.0, plan.heap_capacity);
    if let Some(b) = plan.hard_hop_budget {
        out.push_str(&format!("budget {b}\n"));
    }
    for &(w, t) in &plan.pre {
        out.push_str(&format!("pre {:#x} {:#x}\n", w.0, t.0));
    }
    for s in &plan.steps {
        out.push_str(&format!(
            "reloc {:#x} {:#x} {}\n",
            s.src.0, s.tgt.0, s.words
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let text = "\
# a fixture
bounds 0x10000 0x100000
budget 4
pre 0x20000 0x20100
reloc 0x20000 0x30000 4
reloc 0x30000 0x40000 2
";
        let plan = parse_plan(text).unwrap();
        assert_eq!(plan.heap_capacity, 0x10_0000);
        assert_eq!(plan.hard_hop_budget, Some(4));
        assert_eq!(plan.pre.len(), 1);
        assert_eq!(plan.steps.len(), 2);
        assert_eq!(parse_plan(&render_plan(&plan)).unwrap(), plan);
    }

    #[test]
    fn rejects_junk_with_line_numbers() {
        assert!(parse_plan("frob 1 2").unwrap_err().contains("line 1"));
        assert!(parse_plan("\nreloc 1 2").unwrap_err().contains("line 2"));
        assert!(parse_plan("reloc 0xzz 2 1")
            .unwrap_err()
            .contains("bad number"));
    }
}
