//! Automatic repair of hop-depth findings (`--repair`).
//!
//! The one transformation the machine's semantics makes free is the
//! *terminal rewrite*: a demand store through a forwarded target word
//! lands at that word's chain terminal anyway, and the install edge is
//! terminal-anchored too, so rewriting a step's target to the terminal
//! its chain had at that point in the plan moves the same data to the
//! same final home — it only removes the intermediate hops. That kills
//! the MF004 warning at the step and, because later probe walks now skip
//! the bypassed links, it is frequently enough to pull an MF002
//! budget-overrun plan back under its declared `hard_hop_budget`.
//!
//! What it cannot do:
//!
//! - **MF001 cycles** — no target rewrite removes an edge, so a cyclic
//!   plan is rejected up front.
//! - **Chains the plan itself builds link by link** (each target fresh at
//!   its step, depth emerging only at the probe pass) — there is no
//!   forwarded target to rewrite.
//! - **Multi-word steps** whose per-word terminals are not contiguous —
//!   a `RelocStep` has one target base, so only single-word steps are
//!   rewritten.
//!
//! Every repair is gated: the edited plan is re-verified and returned
//! only if the re-verification reports no error-severity diagnostic.
//! Anything else comes back [`RepairOutcome::Unrepairable`] with the
//! failing report attached — the tool never writes a plan it cannot
//! certify.

use crate::diag::{Report, Verdict};
use crate::verify::verify_plan;
use memfwd::{RelocPlan, RelocStep};
use memfwd_tagmem::Addr;
use std::collections::HashMap;

/// One applied rewrite: step `step`'s target changed from `old_tgt` to
/// its chain terminal `new_tgt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairEdit {
    /// Index of the rewritten step in `plan.steps`.
    pub step: usize,
    /// The target the plan declared.
    pub old_tgt: Addr,
    /// The terminal the data was going to land at anyway.
    pub new_tgt: Addr,
}

/// Result of [`repair_plan`].
#[derive(Debug, Clone)]
pub enum RepairOutcome {
    /// The plan already verifies without error-severity findings and no
    /// step targets a forwarded word: nothing to rewrite.
    AlreadyClean {
        /// The (unchanged) verification report.
        report: Report,
    },
    /// Terminal rewrites were applied and the edited plan re-verified
    /// clean of error-severity diagnostics.
    Repaired {
        /// The minimally-edited plan (only step targets differ).
        plan: RelocPlan,
        /// The rewrites, in step order.
        edits: Vec<RepairEdit>,
        /// The re-verification report for the repaired plan.
        report: Report,
    },
    /// No rewrite sequence fixes this plan.
    Unrepairable {
        /// Why repair gave up.
        reason: String,
        /// The report that made it give up (original or post-rewrite).
        report: Report,
    },
}

/// Walks `start`'s chain in `fwd`. Returns `None` on a cycle.
fn walk(fwd: &HashMap<u64, u64>, start: Addr) -> Option<(Addr, u32)> {
    let mut cur = start.word_base().0;
    let mut seen = std::collections::HashSet::new();
    seen.insert(cur);
    let mut hops = 0u32;
    while let Some(&next) = fwd.get(&cur) {
        let next = Addr(next).word_base().0;
        hops += 1;
        if !seen.insert(next) {
            return None;
        }
        cur = next;
    }
    Some((Addr(cur), hops))
}

/// Replays `plan` against the forwarding graph it builds, rewriting each
/// single-word step whose target is already forwarded to that target's
/// current terminal. Later steps replay against the *rewritten* graph,
/// so a chain of rewrites composes. Returns the edited plan and edits.
fn rewrite_terminals(plan: &RelocPlan) -> (RelocPlan, Vec<RepairEdit>) {
    let mut repaired = plan.clone();
    let mut edits = Vec::new();
    let mut fwd: HashMap<u64, u64> = HashMap::new();
    for &(word, tgt) in &plan.pre {
        fwd.insert(word.word_base().0, tgt.0);
    }
    for (k, step) in repaired.steps.iter_mut().enumerate() {
        let RelocStep { src, tgt, words } = *step;
        // Mirror the verifier: rejected steps build no edges.
        if src.is_null() || tgt.is_null() || !src.is_aligned(8) || !tgt.is_aligned(8) || words == 0
        {
            continue;
        }
        if words == 1 {
            if let Some((terminal, hops)) = walk(&fwd, tgt) {
                if hops > 0 {
                    edits.push(RepairEdit {
                        step: k,
                        old_tgt: tgt,
                        new_tgt: terminal,
                    });
                    step.tgt = terminal;
                }
            }
        }
        // Install the step's edges (against the possibly-rewritten
        // target) so later walks see the repaired graph. A cycle in
        // either walk aborts the replay; the caller's cycle check and
        // the re-verify gate report it.
        for i in 0..step.words {
            let t = step.tgt.add_words(i);
            let Some((terminal, _)) = walk(&fwd, src.add_words(i)) else {
                return (repaired, edits);
            };
            if walk(&fwd, t).is_none() {
                return (repaired, edits);
            }
            fwd.insert(terminal.0, t.0);
        }
    }
    (repaired, edits)
}

/// Attempts to repair `plan` by terminal-rewriting step targets, gating
/// the result on a clean re-verification (no error-severity findings).
pub fn repair_plan(target: &str, plan: &RelocPlan) -> RepairOutcome {
    use crate::diag::Code;
    let before = verify_plan(target, plan);
    if before.has(Code::Mf001) {
        return RepairOutcome::Unrepairable {
            reason: "forwarding cycle (MF001): a target rewrite never removes an edge, so no \
                     rewrite sequence can break the cycle"
                .into(),
            report: before,
        };
    }
    let (repaired, edits) = rewrite_terminals(plan);
    if edits.is_empty() {
        return if before.verdict() == Verdict::Unsafe {
            RepairOutcome::Unrepairable {
                reason: "no step targets an already-forwarded word: terminal rewriting has \
                         nothing to shorten"
                    .into(),
                report: before,
            }
        } else {
            RepairOutcome::AlreadyClean { report: before }
        };
    }
    let after = verify_plan(&format!("{target} [repaired]"), &repaired);
    if after.verdict() == Verdict::Unsafe {
        return RepairOutcome::Unrepairable {
            reason: format!(
                "{} terminal rewrite(s) applied but error-severity findings remain",
                edits.len()
            ),
            report: after,
        };
    }
    RepairOutcome::Repaired {
        plan: repaired,
        edits,
        report: after,
    }
}

/// Renders `edits` one per line, `step K: tgt OLD -> NEW`.
pub fn render_edits(edits: &[RepairEdit]) -> String {
    let mut out = String::new();
    for e in edits {
        out.push_str(&format!(
            "step {}: tgt {:#x} -> {:#x}\n",
            e.step, e.old_tgt.0, e.new_tgt.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Code;
    use crate::planfile::{parse_plan, render_plan};

    fn plan(budget: Option<u32>, steps: &[(u64, u64, u64)]) -> RelocPlan {
        let mut p = RelocPlan::new(Addr(0x10_000), 1 << 20);
        p.hard_hop_budget = budget;
        p.steps = steps
            .iter()
            .map(|&(s, t, w)| RelocStep {
                src: Addr(s),
                tgt: Addr(t),
                words: w,
            })
            .collect();
        p
    }

    #[test]
    fn deep_store_is_repaired_to_the_terminal() {
        // b -> c, c -> d, then a -> b: the last step targets a forwarded
        // word (MF004) and leaves a's chain 3 hops deep, over budget 2
        // (MF002). Rewriting the target to d fixes both.
        let p = plan(
            Some(2),
            &[
                (0x10_008, 0x10_010, 1),
                (0x10_010, 0x10_018, 1),
                (0x10_000, 0x10_008, 1),
            ],
        );
        let before = verify_plan("t", &p);
        assert!(
            before.has(Code::Mf002) && before.has(Code::Mf004),
            "{before:?}"
        );

        let RepairOutcome::Repaired {
            plan: q,
            edits,
            report,
        } = repair_plan("t", &p)
        else {
            panic!("expected a repair");
        };
        assert_eq!(report.verdict(), Verdict::Safe, "{report:?}");
        assert_eq!(edits.len(), 1);
        assert_eq!(edits[0].step, 2);
        assert_eq!(edits[0].old_tgt, Addr(0x10_008));
        assert_eq!(edits[0].new_tgt, Addr(0x10_018));
        assert_eq!(q.steps[2].tgt, Addr(0x10_018));
        // The repair is minimal: everything but the rewritten target is
        // byte-identical.
        assert_eq!(q.steps[0], p.steps[0]);
        assert_eq!(q.steps[1], p.steps[1]);
        assert_eq!(q.steps[2].src, p.steps[2].src);
        assert!(render_edits(&edits).contains("step 2: tgt 0x10008 -> 0x10018"));
    }

    #[test]
    fn rewrites_compose_across_steps() {
        // Two later steps target the same growing chain; each rewrite
        // replays against the graph the previous rewrite produced.
        let p = plan(
            Some(1),
            &[
                (0x10_008, 0x10_010, 1), // b -> c
                (0x10_000, 0x10_008, 1), // a -> b  (rewritten to a -> c)
                (0x10_020, 0x10_000, 1), // e -> a  (rewritten to e -> c)
            ],
        );
        let RepairOutcome::Repaired { edits, report, .. } = repair_plan("t", &p) else {
            panic!("expected a repair");
        };
        assert_eq!(report.verdict(), Verdict::Safe, "{report:?}");
        assert_eq!(edits.len(), 2);
        assert_eq!(edits[0].new_tgt, Addr(0x10_010));
        assert_eq!(edits[1].new_tgt, Addr(0x10_010));
    }

    #[test]
    fn cycles_are_unrepairable() {
        let p = plan(None, &[(0x10_000, 0x10_008, 1), (0x10_008, 0x10_000, 1)]);
        let RepairOutcome::Unrepairable { reason, report } = repair_plan("t", &p) else {
            panic!("expected unrepairable");
        };
        assert!(reason.contains("MF001"), "{reason}");
        assert!(report.has(Code::Mf001));
    }

    #[test]
    fn link_by_link_chains_have_nothing_to_rewrite() {
        // The chain is built at its tail, so no step ever targets a
        // forwarded word — depth only shows up at the probe pass.
        let steps: Vec<(u64, u64, u64)> = (0..5)
            .map(|i| (0x10_000 + 8 * i, 0x10_008 + 8 * i, 1))
            .collect();
        let p = plan(Some(2), &steps);
        let RepairOutcome::Unrepairable { reason, .. } = repair_plan("t", &p) else {
            panic!("expected unrepairable");
        };
        assert!(reason.contains("nothing to shorten"), "{reason}");
    }

    #[test]
    fn clean_plans_pass_through() {
        let p = plan(Some(8), &[(0x10_000, 0x20_000, 4)]);
        let RepairOutcome::AlreadyClean { report } = repair_plan("t", &p) else {
            panic!("expected already-clean");
        };
        assert_eq!(report.verdict(), Verdict::Safe);
    }

    #[test]
    fn fixture_round_trips_through_the_plan_format() {
        let text = include_str!("../fixtures/repairable_deep_store.plan");
        let p = parse_plan(text).expect("fixture parses");
        assert_eq!(verify_plan("fixture", &p).verdict(), Verdict::Unsafe);
        let RepairOutcome::Repaired { plan: q, .. } = repair_plan("fixture", &p) else {
            panic!("fixture must repair");
        };
        // parse -> repair -> render -> parse -> verify: the written file
        // is the plan we certified.
        let reparsed = parse_plan(&render_plan(&q)).expect("rendered plan parses");
        assert_eq!(reparsed, q);
        assert_eq!(
            verify_plan("fixture [repaired]", &reparsed).verdict(),
            Verdict::Safe
        );
    }
}
