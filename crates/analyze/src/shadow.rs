//! The shadow sanitizer: runtime cross-validation of static verdicts.
//!
//! The verifier's soundness contract (see [`crate::verify`]) is a claim
//! about real executions, so it is checked against real executions:
//!
//! 1. **Certified ⇒ fault-free.** A plan with no error diagnostics must
//!    execute — steps, then demand probes of every involved word — without
//!    raising a [`memfwd::MachineFault`].
//! 2. **Fault ⇒ flagged.** When execution does fault, at least one error
//!    diagnostic must predict that fault's kind
//!    ([`crate::diag::Code::predicted_fault_kinds`]).
//!
//! Either violation is a bug in the verifier (or the machine) and is
//! reported as a [`ShadowMismatch`]. The module is feature-gated
//! (`shadow`, on by default) so lint-only builds can drop the machinery.

use crate::diag::{Report, Severity};
use crate::verify::verify_plan;
use memfwd::{try_relocate, Machine, MachineFault, RelocPlan, SimConfig};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Once;

/// How a cross-validation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShadowMismatch {
    /// The verifier certified the plan, but execution faulted.
    CertifiedButFaulted(MachineFault),
    /// Execution faulted and no error diagnostic predicted the fault kind.
    UnpredictedFault(MachineFault),
}

/// The outcome of one cross-validated plan.
#[derive(Debug)]
pub struct ShadowOutcome {
    /// The static report.
    pub report: Report,
    /// The execution outcome.
    pub fault: Option<MachineFault>,
}

/// Builds the machine a plan executes on: same heap, same hop budget.
fn plan_machine(plan: &RelocPlan) -> Machine {
    let cfg = SimConfig {
        heap_base: plan.heap_base,
        heap_capacity: plan.heap_capacity,
        hard_hop_budget: plan.hard_hop_budget,
        ..SimConfig::default()
    };
    Machine::new(cfg)
}

thread_local! {
    /// True while [`run_plan`] is converting machine-fault panics into
    /// typed errors; the wrapped panic hook stays silent for those (the
    /// same idiom `memfwd_apps::run` uses).
    static CAPTURING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn install_silent_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !CAPTURING.with(|c| c.get()) {
                previous(info);
            }
        }));
    });
}

/// Executes `plan` on a real machine: applies `pre` edges, runs every step
/// through [`try_relocate`], then demand-loads every word in every step's
/// source and target range and every `pre` source — the probe set of the
/// soundness contract. Returns the first fault, if any. (A step's inner
/// demand store uses the machine's infallible API, so its faults arrive as
/// record-and-panic; they are converted back to typed faults here.)
///
/// # Errors
///
/// The first [`MachineFault`] the execution raises.
pub fn run_plan(plan: &RelocPlan) -> Result<(), MachineFault> {
    install_silent_hook();
    let _ = memfwd::take_last_fault();
    CAPTURING.with(|c| c.set(true));
    let result = catch_unwind(AssertUnwindSafe(|| -> Result<(), MachineFault> {
        let mut m = plan_machine(plan);
        for &(w, t) in &plan.pre {
            m.unforwarded_write(w.word_base(), t.0, true);
        }
        for step in &plan.steps {
            try_relocate(&mut m, step.src, step.tgt, step.words)?;
        }
        for step in &plan.steps {
            for i in 0..step.words {
                m.try_load_word(step.src.add_words(i))?;
                m.try_load_word(step.tgt.add_words(i))?;
            }
        }
        for &(w, _) in &plan.pre {
            m.try_load_word(w.word_base())?;
        }
        Ok(())
    }));
    CAPTURING.with(|c| c.set(false));
    match result {
        Ok(r) => r,
        Err(payload) => match memfwd::take_last_fault() {
            Some(fault) => Err(fault),
            None => resume_unwind(payload),
        },
    }
}

/// Statically verifies `plan`, executes it, and checks both directions of
/// the soundness contract.
///
/// # Errors
///
/// The [`ShadowMismatch`] describing which direction failed.
pub fn cross_validate_plan(
    target: &str,
    plan: &RelocPlan,
) -> Result<ShadowOutcome, ShadowMismatch> {
    let report = verify_plan(target, plan);
    let fault = run_plan(plan).err();
    check_consistency(&report, fault.as_ref(), plan.hard_hop_budget.is_some())?;
    Ok(ShadowOutcome { report, fault })
}

/// The consistency rules shared by plan- and app-level cross-validation.
pub fn check_consistency(
    report: &Report,
    fault: Option<&MachineFault>,
    budgeted: bool,
) -> Result<(), ShadowMismatch> {
    let has_errors = report
        .diagnostics
        .iter()
        .any(|d| d.severity() == Severity::Error);
    match fault {
        None => Ok(()),
        Some(f) if !has_errors => Err(ShadowMismatch::CertifiedButFaulted(*f)),
        Some(f) => {
            let predicted = report
                .errors()
                .any(|d| d.code.predicted_fault_kinds(budgeted).contains(&f.kind()));
            if predicted {
                Ok(())
            } else {
                Err(ShadowMismatch::UnpredictedFault(*f))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Code, Verdict};
    use memfwd::RelocStep;
    use memfwd_tagmem::Addr;

    fn plan(steps: &[(u64, u64, u64)]) -> RelocPlan {
        let mut p = RelocPlan::new(Addr(0x10_000), 1 << 24);
        p.steps = steps
            .iter()
            .map(|&(s, t, w)| RelocStep {
                src: Addr(s),
                tgt: Addr(t),
                words: w,
            })
            .collect();
        p
    }

    #[test]
    fn clean_plan_cross_validates() {
        let p = plan(&[(0x10_000, 0x20_000, 4), (0x20_000, 0x30_000, 4)]);
        let out = cross_validate_plan("t", &p).unwrap();
        assert_eq!(out.fault, None);
        assert_eq!(out.report.verdict(), Verdict::Safe);
    }

    #[test]
    fn cyclic_plan_faults_and_is_predicted() {
        let p = plan(&[(0x10_000, 0x10_008, 1), (0x10_008, 0x10_000, 1)]);
        let out = cross_validate_plan("t", &p).unwrap();
        assert!(matches!(
            out.fault,
            Some(MachineFault::ForwardingCycle { .. })
        ));
        assert!(out.report.has(Code::Mf001));
    }

    #[test]
    fn budget_overrun_faults_and_is_predicted() {
        let mut p = plan(
            &(0..6)
                .map(|i| (0x10_000 + 8 * i, 0x10_008 + 8 * i, 1))
                .collect::<Vec<_>>(),
        );
        p.hard_hop_budget = Some(2);
        let out = cross_validate_plan("t", &p).unwrap();
        assert!(matches!(
            out.fault,
            Some(MachineFault::HopLimitExceeded { .. })
        ));
        assert!(out.report.has(Code::Mf002));
    }

    #[test]
    fn misaligned_plan_faults_and_is_predicted() {
        let p = plan(&[(0x10_004, 0x20_000, 1)]);
        let out = cross_validate_plan("t", &p).unwrap();
        assert!(matches!(out.fault, Some(MachineFault::Misaligned { .. })));
        assert!(out.report.has(Code::Mf008));
    }

    #[test]
    fn mismatch_is_detected_not_masked() {
        // A fabricated inconsistent pair: clean report, but a fault.
        let report = Report {
            target: "t".into(),
            steps: 1,
            diagnostics: vec![],
        };
        let fault = MachineFault::NullDeref { is_store: true };
        assert_eq!(
            check_consistency(&report, Some(&fault), false),
            Err(ShadowMismatch::CertifiedButFaulted(fault))
        );
    }
}
