//! Litmus tests: small multi-core programs whose allowed/forbidden
//! outcomes pin the machine's memory-model semantics, and whose certifier
//! verdicts pin the analysis.
//!
//! A `.litmus` file declares shared locations, one straight-line program
//! per core, and three kinds of expectations:
//!
//! ```text
//! name sb
//! locs x y
//! 0: store x 1
//! 0: load y -> r0
//! 1: store y 1
//! 1: load x -> r1
//! allowed sc: r0=1 r1=1
//! forbidden sc: r0=0 r1=0
//! allowed tso: r0=0 r1=0
//! certify sc: unsafe MF009
//! certify tso: unsafe MF009 MF011
//! ```
//!
//! - `allowed M: cond [| cond ...]` — each condition must be observed by
//!   at least one exhaustively enumerated schedule under model `M`;
//! - `forbidden M: cond [| cond ...]` — no schedule may observe it;
//! - `certify M: verdict [codes...]` — the certifier's verdict on the
//!   *canonical* schedule (each core runs to completion in core order,
//!   then all buffers drain) must match, and every listed code must be
//!   present in the report.
//!
//! Instructions: `store L V`, `load L -> R`, `fence`, `strel L V`
//! (store-release), `ldacq L -> R` (load-acquire), `lock L`, `unlock L`,
//! `reloc SRC DST NWORDS`.
//!
//! # Exhaustive enumeration
//!
//! Schedules are enumerated abstractly as interleavings of per-core
//! instruction streams; under TSO an explicit `drain one entry of core c`
//! transition is additionally enabled whenever `c`'s buffer is non-empty
//! (the operational-TSO style of Colvin & Smith). Each schedule replays
//! on a fresh [`SmpMachine`], so the observed outcome sets are ground
//! truth for the operational semantics, not a model of them.
//!
//! # Soundness cross-validation
//!
//! Beyond the declared expectations, [`check_litmus`] validates the
//! certifier against the enumeration in both directions:
//!
//! - **DRF guarantee** (soundness of `Safe`): if *every* schedule under
//!   both models certifies race-free, the SC and TSO outcome sets must be
//!   identical — data-race-free programs cannot observe weak behavior;
//! - **completeness**: if the TSO outcome set differs from the SC set,
//!   the weak behavior is reachable through some unordered conflicting
//!   pair, and the canonical TSO certification must report a race
//!   (MF009 or MF010).

use crate::diag::{Code, Report, Verdict};
use crate::race::{analyze_trace, race_report};
use memfwd::{MemoryModel, SimConfig, SmpConfig, SmpEvent, SmpMachine};
use memfwd_tagmem::Addr;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Hard cap on enumerated schedules per (test, model): litmus programs
/// are tiny by design, and a runaway file should fail loudly, not hang.
const MAX_SCHEDULES: usize = 200_000;

/// One litmus instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// `store L V`: a plain (TSO: buffered) store.
    Store {
        /// Location name.
        loc: String,
        /// Value stored.
        val: u64,
    },
    /// `load L -> R`: a plain load into register `R`.
    Load {
        /// Location name.
        loc: String,
        /// Destination register.
        reg: String,
    },
    /// `fence`: drain own buffer; no cross-core ordering.
    Fence,
    /// `strel L V`: store-release (drains, then publishes).
    StoreRelease {
        /// Location name.
        loc: String,
        /// Value stored.
        val: u64,
    },
    /// `ldacq L -> R`: load-acquire into register `R`.
    LoadAcquire {
        /// Location name.
        loc: String,
        /// Destination register.
        reg: String,
    },
    /// `lock L`: acquire the per-word lock (blocks while held).
    Lock {
        /// Lock word name.
        loc: String,
    },
    /// `unlock L`: release the per-word lock.
    Unlock {
        /// Lock word name.
        loc: String,
    },
    /// `reloc SRC DST N`: relocate `N` words, leaving forwarding words.
    Reloc {
        /// Source location name.
        src: String,
        /// Destination location name.
        dst: String,
        /// Word count.
        words: u64,
    },
}

/// An outcome constraint: every listed register must hold its value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cond(pub Vec<(String, u64)>);

/// A final register valuation, sorted by register name.
pub type Outcome = Vec<(String, u64)>;

impl Cond {
    fn matches(&self, outcome: &Outcome) -> bool {
        self.0
            .iter()
            .all(|(r, v)| outcome.iter().any(|(or, ov)| or == r && ov == v))
    }

    fn render(&self) -> String {
        self.0
            .iter()
            .map(|(r, v)| format!("{r}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// The expected certifier result for one model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertifyExpect {
    /// Expected verdict of the canonical-schedule certification.
    pub verdict: Verdict,
    /// Codes that must be present in the report.
    pub codes: Vec<Code>,
}

/// A parsed litmus test.
#[derive(Debug, Clone)]
pub struct LitmusTest {
    /// Test name (`name` line, or the caller's default).
    pub name: String,
    /// Declared shared locations, one 8-byte word each, zero-initialized.
    pub locs: Vec<String>,
    /// Per-core straight-line programs.
    pub progs: Vec<Vec<Instr>>,
    /// `allowed` expectations per model.
    pub allowed: Vec<(MemoryModel, Cond)>,
    /// `forbidden` expectations per model.
    pub forbidden: Vec<(MemoryModel, Cond)>,
    /// `certify` expectations per model.
    pub certify: Vec<(MemoryModel, CertifyExpect)>,
}

fn parse_val(s: &str) -> Result<u64, String> {
    let r = match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    r.map_err(|_| format!("bad value '{s}'"))
}

fn parse_cond(s: &str) -> Result<Cond, String> {
    let mut pairs = Vec::new();
    for item in s.split_whitespace() {
        let (reg, val) = item
            .split_once('=')
            .ok_or_else(|| format!("bad condition term '{item}' (want reg=val)"))?;
        pairs.push((reg.to_string(), parse_val(val)?));
    }
    if pairs.is_empty() {
        return Err("empty condition".into());
    }
    Ok(Cond(pairs))
}

fn parse_instr(tokens: &[&str]) -> Result<Instr, String> {
    match tokens {
        ["store", loc, val] => Ok(Instr::Store {
            loc: loc.to_string(),
            val: parse_val(val)?,
        }),
        ["load", loc, "->", reg] => Ok(Instr::Load {
            loc: loc.to_string(),
            reg: reg.to_string(),
        }),
        ["fence"] => Ok(Instr::Fence),
        ["strel", loc, val] => Ok(Instr::StoreRelease {
            loc: loc.to_string(),
            val: parse_val(val)?,
        }),
        ["ldacq", loc, "->", reg] => Ok(Instr::LoadAcquire {
            loc: loc.to_string(),
            reg: reg.to_string(),
        }),
        ["lock", loc] => Ok(Instr::Lock {
            loc: loc.to_string(),
        }),
        ["unlock", loc] => Ok(Instr::Unlock {
            loc: loc.to_string(),
        }),
        ["reloc", src, dst, n] => Ok(Instr::Reloc {
            src: src.to_string(),
            dst: dst.to_string(),
            words: parse_val(n)?,
        }),
        _ => Err(format!("unknown instruction '{}'", tokens.join(" "))),
    }
}

/// Parses a `.litmus` file. `default_name` names the test when the file
/// carries no `name` line (callers pass the file stem).
pub fn parse_litmus(text: &str, default_name: &str) -> Result<LitmusTest, String> {
    let mut test = LitmusTest {
        name: default_name.to_string(),
        locs: Vec::new(),
        progs: Vec::new(),
        allowed: Vec::new(),
        forbidden: Vec::new(),
        certify: Vec::new(),
    };
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| format!("line {}: {msg}", ln + 1);
        if let Some(rest) = line.strip_prefix("name ") {
            test.name = rest.trim().to_string();
        } else if let Some(rest) = line.strip_prefix("locs ") {
            test.locs = rest.split_whitespace().map(str::to_string).collect();
        } else if let Some(rest) = line
            .strip_prefix("allowed ")
            .map(|r| (r, true))
            .or_else(|| line.strip_prefix("forbidden ").map(|r| (r, false)))
        {
            let (payload, is_allowed) = rest;
            let (model, conds) = payload
                .split_once(':')
                .ok_or_else(|| err("missing ':' after model".into()))?;
            let model = MemoryModel::from_name(model.trim())
                .ok_or_else(|| err(format!("unknown model '{}'", model.trim())))?;
            for c in conds.split('|') {
                let cond = parse_cond(c).map_err(err)?;
                if is_allowed {
                    test.allowed.push((model, cond));
                } else {
                    test.forbidden.push((model, cond));
                }
            }
        } else if let Some(rest) = line.strip_prefix("certify ") {
            let (model, payload) = rest
                .split_once(':')
                .ok_or_else(|| err("missing ':' after model".into()))?;
            let model = MemoryModel::from_name(model.trim())
                .ok_or_else(|| err(format!("unknown model '{}'", model.trim())))?;
            let mut tokens = payload.split_whitespace();
            let verdict = match tokens.next() {
                Some("safe") => Verdict::Safe,
                Some("safe-with-warnings") => Verdict::SafeWithWarnings,
                Some("unsafe") => Verdict::Unsafe,
                other => return Err(err(format!("bad verdict {other:?}"))),
            };
            let mut codes = Vec::new();
            for t in tokens {
                codes.push(Code::parse(t).ok_or_else(|| err(format!("unknown code '{t}'")))?);
            }
            test.certify.push((model, CertifyExpect { verdict, codes }));
        } else if let Some((core, instr)) = line.split_once(':') {
            let core: usize = core
                .trim()
                .parse()
                .map_err(|_| err(format!("bad core index '{}'", core.trim())))?;
            if core >= 8 {
                return Err(err("core index out of range (max 7)".into()));
            }
            if test.progs.len() <= core {
                test.progs.resize_with(core + 1, Vec::new);
            }
            let tokens: Vec<&str> = instr.split_whitespace().collect();
            test.progs[core].push(parse_instr(&tokens).map_err(err)?);
        } else {
            return Err(err(format!("unparsable line '{line}'")));
        }
    }
    if test.locs.is_empty() {
        return Err("no 'locs' declaration".into());
    }
    if test.progs.is_empty() {
        return Err("no program lines".into());
    }
    for (c, prog) in test.progs.iter().enumerate() {
        for i in prog {
            for loc in instr_locs(i) {
                if !test.locs.iter().any(|l| l == loc) {
                    return Err(format!("core {c} references undeclared location '{loc}'"));
                }
            }
        }
    }
    Ok(test)
}

fn instr_locs(i: &Instr) -> Vec<&str> {
    match i {
        Instr::Store { loc, .. }
        | Instr::Load { loc, .. }
        | Instr::StoreRelease { loc, .. }
        | Instr::LoadAcquire { loc, .. }
        | Instr::Lock { loc }
        | Instr::Unlock { loc } => vec![loc],
        Instr::Fence => vec![],
        Instr::Reloc { src, dst, .. } => vec![src, dst],
    }
}

// ---------------------------------------------------------------------
// Schedule enumeration and replay.
// ---------------------------------------------------------------------

/// One transition of a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    /// Execute the next instruction of core `c`.
    Exec(usize),
    /// Drain one store-buffer entry of core `c` (TSO only).
    Drain(usize),
}

/// The abstract store-buffer growth of an instruction: how many entries
/// it pushes, or `None` when it fully drains the buffer as a side effect.
/// Mirrors the operational machine exactly for the instruction set above
/// (all accesses are aligned 8-byte words, so loads never force drains,
/// and litmus buffers stay far below the capacity trim).
fn sb_effect(i: &Instr) -> Option<u64> {
    match i {
        Instr::Store { .. } => Some(1),
        Instr::Reloc { words, .. } => Some(2 * words),
        Instr::Load { .. } | Instr::LoadAcquire { .. } => Some(0),
        Instr::Fence | Instr::StoreRelease { .. } | Instr::Lock { .. } | Instr::Unlock { .. } => {
            None
        }
    }
}

/// Enumerates every schedule of `test` under `model` (see module docs).
fn schedules(test: &LitmusTest, model: MemoryModel) -> Result<Vec<Vec<Step>>, String> {
    struct Dfs<'t> {
        test: &'t LitmusTest,
        tso: bool,
        out: Vec<Vec<Step>>,
        cur: Vec<Step>,
        ip: Vec<usize>,
        depth: Vec<u64>,
        locked: HashMap<String, usize>,
    }
    /// The abstract effect of executing a core's next instruction.
    enum Eff {
        /// Lock held elsewhere: the core cannot progress by executing.
        Blocked,
        /// Acquire this lock (drains the buffer on entry).
        Lock(String),
        /// Release this lock (drains the buffer first).
        Unlock(String),
        /// Push `n` store-buffer entries (0 for loads).
        Push(u64),
        /// Drain the whole buffer as a side effect (fence, release).
        DrainAll,
    }
    impl Dfs<'_> {
        fn go(&mut self) -> Result<(), String> {
            let done = (0..self.test.progs.len()).all(|c| self.ip[c] == self.test.progs[c].len());
            if done {
                if self.out.len() >= MAX_SCHEDULES {
                    return Err(format!(
                        "more than {MAX_SCHEDULES} schedules; shrink the litmus program"
                    ));
                }
                self.out.push(self.cur.clone());
                return Ok(());
            }
            for c in 0..self.test.progs.len() {
                if self.ip[c] < self.test.progs[c].len() {
                    let eff = match &self.test.progs[c][self.ip[c]] {
                        Instr::Lock { loc } if self.locked.contains_key(loc) => Eff::Blocked,
                        Instr::Lock { loc } => Eff::Lock(loc.clone()),
                        Instr::Unlock { loc } => Eff::Unlock(loc.clone()),
                        other => match sb_effect(other) {
                            Some(n) => Eff::Push(if self.tso { n } else { 0 }),
                            None => Eff::DrainAll,
                        },
                    };
                    let saved = self.depth[c];
                    match eff {
                        Eff::Blocked => {}
                        Eff::Lock(loc) => {
                            self.locked.insert(loc.clone(), c);
                            self.depth[c] = 0;
                            self.step_exec(c)?;
                            self.depth[c] = saved;
                            self.locked.remove(&loc);
                        }
                        Eff::Unlock(loc) => {
                            self.locked.remove(&loc);
                            self.depth[c] = 0;
                            self.step_exec(c)?;
                            self.depth[c] = saved;
                            self.locked.insert(loc, c);
                        }
                        Eff::Push(n) => {
                            self.depth[c] += n;
                            self.step_exec(c)?;
                            self.depth[c] = saved;
                        }
                        Eff::DrainAll => {
                            self.depth[c] = 0;
                            self.step_exec(c)?;
                            self.depth[c] = saved;
                        }
                    }
                }
                // A pending buffer can drain at any point, including while
                // its core is blocked on a lock.
                if self.tso && self.depth[c] > 0 {
                    self.cur.push(Step::Drain(c));
                    self.depth[c] -= 1;
                    self.go()?;
                    self.depth[c] += 1;
                    self.cur.pop();
                }
            }
            Ok(())
        }

        fn step_exec(&mut self, c: usize) -> Result<(), String> {
            self.cur.push(Step::Exec(c));
            self.ip[c] += 1;
            let r = self.go();
            self.ip[c] -= 1;
            self.cur.pop();
            r
        }
    }
    let n = test.progs.len();
    let mut dfs = Dfs {
        test,
        tso: model == MemoryModel::Tso,
        out: Vec::new(),
        cur: Vec::new(),
        ip: vec![0; n],
        depth: vec![0; n],
        locked: HashMap::new(),
    };
    dfs.go()?;
    Ok(dfs.out)
}

/// Replays one schedule on a fresh machine; returns the final register
/// valuation and the event trace (including the terminal drain-all).
fn run_schedule(
    test: &LitmusTest,
    model: MemoryModel,
    sched: &[Step],
) -> Result<(Outcome, Vec<SmpEvent>), String> {
    let cores = test.progs.len();
    let mut m = SmpMachine::new(
        SmpConfig {
            cores,
            ..SmpConfig::default()
        },
        SimConfig::default().with_memory_model(model),
    );
    m.enable_event_trace();
    let mut addrs: HashMap<&str, Addr> = HashMap::new();
    for loc in &test.locs {
        addrs.insert(loc, m.malloc(8));
    }
    let mut regs: BTreeMap<&str, u64> = BTreeMap::new();
    for prog in &test.progs {
        for i in prog {
            if let Instr::Load { reg, .. } | Instr::LoadAcquire { reg, .. } = i {
                regs.insert(reg, 0);
            }
        }
    }
    let addr = |loc: &str| addrs[loc];
    let mut ip = vec![0usize; cores];
    let fail = |e: memfwd::MachineFault| format!("litmus '{}' faulted: {e}", test.name);
    for step in sched {
        match *step {
            Step::Exec(c) => {
                let instr = &test.progs[c][ip[c]];
                ip[c] += 1;
                match instr {
                    Instr::Store { loc, val } => {
                        m.try_store(c, addr(loc), 8, *val).map_err(fail)?
                    }
                    Instr::Load { loc, reg } => {
                        let v = m.try_load(c, addr(loc), 8).map_err(fail)?;
                        regs.insert(reg, v);
                    }
                    Instr::Fence => m.try_fence(c).map_err(fail)?,
                    Instr::StoreRelease { loc, val } => {
                        m.try_store_release(c, addr(loc), 8, *val).map_err(fail)?
                    }
                    Instr::LoadAcquire { loc, reg } => {
                        let v = m.try_load_acquire(c, addr(loc), 8).map_err(fail)?;
                        regs.insert(reg, v);
                    }
                    Instr::Lock { loc } => m.try_lock(c, addr(loc)).map_err(fail)?,
                    Instr::Unlock { loc } => m.try_unlock(c, addr(loc)).map_err(fail)?,
                    Instr::Reloc { src, dst, words } => m.relocate(c, addr(src), addr(dst), *words),
                }
            }
            Step::Drain(c) => {
                m.try_drain_one(c).map_err(fail)?;
            }
        }
    }
    for c in 0..cores {
        m.try_drain(c).map_err(fail)?;
    }
    let outcome = regs.into_iter().map(|(r, v)| (r.to_string(), v)).collect();
    Ok((outcome, m.take_event_trace().unwrap_or_default()))
}

/// The canonical certification schedule: core 0 runs to completion, then
/// core 1, ..., then every buffer drains. Sequential core order keeps
/// release→acquire pairs paired (the releasing core runs first), so a
/// correctly synchronized handoff certifies clean.
fn canonical_schedule(test: &LitmusTest) -> Vec<Step> {
    let mut out = Vec::new();
    for (c, prog) in test.progs.iter().enumerate() {
        out.extend(std::iter::repeat_n(Step::Exec(c), prog.len()));
    }
    out
}

/// Certifies the canonical schedule of `test` under `model`.
pub fn certify_litmus(test: &LitmusTest, model: MemoryModel) -> Result<Report, String> {
    let (_, trace) = run_schedule(test, model, &canonical_schedule(test))?;
    Ok(race_report(
        &format!("litmus:{}@{model}", test.name),
        test.progs.len(),
        &trace,
    ))
}

// ---------------------------------------------------------------------
// The gate: expectations + soundness cross-validation.
// ---------------------------------------------------------------------

/// Everything observed for one test under one model.
#[derive(Debug, Clone)]
pub struct ModelCheck {
    /// The model this check ran under.
    pub model: MemoryModel,
    /// Number of enumerated schedules.
    pub schedules: usize,
    /// The set of observed final register valuations.
    pub outcomes: BTreeSet<Outcome>,
    /// Did every schedule's trace certify free of MF009/MF010 races?
    pub all_race_free: bool,
    /// The canonical-schedule certification report.
    pub report: Report,
}

/// The result of running one litmus test under both models.
#[derive(Debug, Clone)]
pub struct LitmusResult {
    /// Test name.
    pub name: String,
    /// Per-model observations, SC first.
    pub checks: Vec<ModelCheck>,
    /// Violated expectations and soundness checks (empty = pass).
    pub violations: Vec<String>,
}

impl LitmusResult {
    /// True when every expectation and soundness direction held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs `test` under SC and TSO: exhaustive outcome enumeration, declared
/// allowed/forbidden/certify expectations, and the two soundness
/// directions described in the module docs.
pub fn check_litmus(test: &LitmusTest) -> Result<LitmusResult, String> {
    let cores = test.progs.len();
    let mut checks = Vec::new();
    let mut violations = Vec::new();
    for model in [MemoryModel::Sc, MemoryModel::Tso] {
        let scheds = schedules(test, model)?;
        let mut outcomes = BTreeSet::new();
        let mut all_race_free = true;
        for s in &scheds {
            let (outcome, trace) = run_schedule(test, model, s)?;
            outcomes.insert(outcome);
            if all_race_free && !analyze_trace(cores, &trace).races.is_empty() {
                all_race_free = false;
            }
        }
        let report = certify_litmus(test, model)?;
        for (m, cond) in &test.allowed {
            if *m == model && !outcomes.iter().any(|o| cond.matches(o)) {
                violations.push(format!(
                    "{model}: allowed outcome '{}' was never observed",
                    cond.render()
                ));
            }
        }
        for (m, cond) in &test.forbidden {
            if *m == model {
                if let Some(o) = outcomes.iter().find(|o| cond.matches(o)) {
                    violations.push(format!(
                        "{model}: forbidden outcome '{}' observed as {:?}",
                        cond.render(),
                        o
                    ));
                }
            }
        }
        for (m, exp) in &test.certify {
            if *m == model {
                if report.verdict() != exp.verdict {
                    violations.push(format!(
                        "{model}: certifier said {}, expected {}",
                        report.verdict(),
                        exp.verdict
                    ));
                }
                for code in &exp.codes {
                    if !report.has(*code) {
                        violations
                            .push(format!("{model}: certifier did not report expected {code}"));
                    }
                }
            }
        }
        checks.push(ModelCheck {
            model,
            schedules: scheds.len(),
            outcomes,
            all_race_free,
            report,
        });
    }
    let (sc, tso) = (&checks[0], &checks[1]);
    if sc.all_race_free && tso.all_race_free && sc.outcomes != tso.outcomes {
        violations.push(
            "soundness: all schedules certified race-free, yet SC and TSO outcome sets differ"
                .into(),
        );
    }
    if sc.outcomes != tso.outcomes && !(tso.report.has(Code::Mf009) || tso.report.has(Code::Mf010))
    {
        violations.push(
            "completeness: TSO observes weak behaviors but the canonical certification is race-free"
                .into(),
        );
    }
    Ok(LitmusResult {
        name: test.name.clone(),
        checks,
        violations,
    })
}

fn render_outcome(o: &Outcome) -> String {
    o.iter()
        .map(|(r, v)| format!("{r}={v}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Renders litmus results as human-readable text.
pub fn render_litmus_human(results: &[LitmusResult]) -> String {
    let mut out = String::new();
    for r in results {
        out.push_str(&format!(
            "{}: {}\n",
            r.name,
            if r.passed() { "pass" } else { "FAIL" }
        ));
        for c in &r.checks {
            out.push_str(&format!(
                "  {}: {} schedules, {} outcomes [{}], certify {}{}\n",
                c.model,
                c.schedules,
                c.outcomes.len(),
                c.outcomes
                    .iter()
                    .map(render_outcome)
                    .collect::<Vec<_>>()
                    .join(" / "),
                c.report.verdict(),
                if c.all_race_free { ", all-drf" } else { "" },
            ));
        }
        for v in &r.violations {
            out.push_str(&format!("  violation: {v}\n"));
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders litmus results as one JSON document (hand-rolled; the
/// workspace is offline and carries no serde).
pub fn render_litmus_json(results: &[LitmusResult]) -> String {
    let mut out = String::from("{\n  \"litmus\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"passed\": {}, \"models\": [",
            json_escape(&r.name),
            r.passed()
        ));
        for (j, c) in r.checks.iter().enumerate() {
            let codes: Vec<String> = c
                .report
                .diagnostics
                .iter()
                .map(|d| format!("\"{}\"", d.code))
                .collect();
            out.push_str(&format!(
                "\n      {{\"model\": \"{}\", \"schedules\": {}, \"outcomes\": [{}], \
                 \"all_race_free\": {}, \"verdict\": \"{}\", \"codes\": [{}]}}{}",
                c.model,
                c.schedules,
                c.outcomes
                    .iter()
                    .map(|o| format!("\"{}\"", json_escape(&render_outcome(o))))
                    .collect::<Vec<_>>()
                    .join(", "),
                c.all_race_free,
                c.report.verdict(),
                codes.join(", "),
                if j + 1 < r.checks.len() { "," } else { "" }
            ));
        }
        out.push_str("\n    ], \"violations\": [");
        out.push_str(
            &r.violations
                .iter()
                .map(|v| format!("\"{}\"", json_escape(v)))
                .collect::<Vec<_>>()
                .join(", "),
        );
        out.push_str(&format!(
            "]}}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    let failed = results.iter().filter(|r| !r.passed()).count();
    out.push_str(&format!("  ],\n  \"failed\": {failed}\n}}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SB: &str = "\
name sb
locs x y
0: store x 1
0: load y -> r0
1: store y 1
1: load x -> r1
allowed sc: r0=1 r1=1 | r0=0 r1=1 | r0=1 r1=0
forbidden sc: r0=0 r1=0
allowed tso: r0=0 r1=0 | r0=1 r1=1
certify sc: unsafe MF009
certify tso: unsafe MF009 MF011
";

    #[test]
    fn parses_the_store_buffering_litmus() {
        let t = parse_litmus(SB, "sb").expect("parses");
        assert_eq!(t.name, "sb");
        assert_eq!(t.progs.len(), 2);
        assert_eq!(t.progs[0].len(), 2);
        assert_eq!(t.allowed.len(), 5);
        assert_eq!(t.forbidden.len(), 1);
        assert_eq!(t.certify.len(), 2);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_litmus("locs x\n0: teleport x\n", "t").is_err());
        assert!(parse_litmus("0: store x 1\n", "t").is_err(), "no locs");
        assert!(
            parse_litmus("locs x\n0: store y 1\n", "t").is_err(),
            "undeclared loc"
        );
        assert!(parse_litmus("locs x\nallowed lso: r0=0\n0: store x 1\n", "t").is_err());
    }

    #[test]
    fn sb_distinguishes_the_models() {
        let t = parse_litmus(SB, "sb").expect("parses");
        let r = check_litmus(&t).expect("runs");
        assert!(r.passed(), "{:?}", r.violations);
        let sc = &r.checks[0];
        let tso = &r.checks[1];
        assert!(sc.outcomes.len() < tso.outcomes.len(), "TSO adds (0,0)");
        let weak: Outcome = vec![("r0".into(), 0), ("r1".into(), 0)];
        assert!(!sc.outcomes.contains(&weak));
        assert!(tso.outcomes.contains(&weak));
    }

    #[test]
    fn locked_counter_is_drf_with_equal_outcomes() {
        let src = "\
locs l x
0: lock l
0: store x 1
0: unlock l
1: lock l
1: load x -> r0
1: unlock l
certify sc: safe
certify tso: safe
";
        let t = parse_litmus(src, "lock").expect("parses");
        let r = check_litmus(&t).expect("runs");
        assert!(r.passed(), "{:?}", r.violations);
        assert!(r.checks[0].all_race_free && r.checks[1].all_race_free);
        assert_eq!(r.checks[0].outcomes, r.checks[1].outcomes);
        // Both orders of the critical sections are observable.
        assert_eq!(r.checks[0].outcomes.len(), 2);
    }

    #[test]
    fn violated_expectation_is_reported_not_panicked() {
        let src = "\
locs x
0: store x 1
1: load x -> r0
forbidden tso: r0=1
";
        let t = parse_litmus(src, "bad").expect("parses");
        let r = check_litmus(&t).expect("runs");
        assert!(!r.passed());
        assert!(r.violations[0].contains("forbidden"), "{:?}", r.violations);
    }

    #[test]
    fn json_and_human_render() {
        let t = parse_litmus(SB, "sb").expect("parses");
        let r = check_litmus(&t).expect("runs");
        let json = render_litmus_json(std::slice::from_ref(&r));
        assert!(json.contains("\"name\": \"sb\""));
        assert!(json.contains("\"failed\": 0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let human = render_litmus_human(&[r]);
        assert!(human.contains("sb: pass"));
    }
}
