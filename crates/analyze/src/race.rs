//! The SMP happens-before race certifier, parameterized by memory model.
//!
//! Under SC the machine's only synchronization primitive is the global
//! [`SmpMachine::barrier`], so its happens-before relation is simple:
//! program order within a core, plus every barrier ordering everything
//! before it (on all cores) ahead of everything after it. Under TSO
//! ([`memfwd::MemoryModel::Tso`]) the trace additionally carries store
//! buffer lifecycle events and fine-grained synchronization, and the
//! happens-before relation gains the corresponding sync edges:
//!
//! | trace events                | edge                                    |
//! |-----------------------------|-----------------------------------------|
//! | `Barrier`                   | global join: everything before → after  |
//! | `Release w` → `Acquire w`   | releaser's prefix → acquirer's suffix   |
//! | `Unlock w` → `Lock w`       | critical section → next critical section|
//! | `Fence`                     | **no** cross-core edge (drain only)     |
//!
//! The analysis is deliberately model-agnostic: it is keyed on trace
//! *content*, so an SC trace (which carries no buffer events) yields
//! exactly the PR-4 behavior, while a TSO trace additionally surfaces:
//!
//! - [`MF010`](crate::diag::Code::Mf010) — a data race on a word that a
//!   forwarding-bit install targeted: the §5 publication race, where a
//!   remote core can read the stale un-forwarded word while the install
//!   sits in the store buffer;
//! - [`MF011`](crate::diag::Code::Mf011) — a remote load of a word
//!   another core still holds an undrained buffered store to (read skew);
//! - [`MF012`](crate::diag::Code::Mf012) — a relocation whose installed
//!   words are touched by another core before the installing core
//!   performs any release-class operation (release, unlock, or barrier —
//!   a fence does *not* qualify, as it publishes without ordering).
//!
//! Two accesses **race** when they touch the same word from different
//! cores, at least one is a store, and neither happens-before the other.
//! A racy campaign is timing-dependent in a way the simulator's
//! deterministic interleaving hides; the certifier surfaces it as an
//! [`MF009`](crate::diag::Code::Mf009) (or MF010) diagnostic.

use crate::diag::{Code, Diagnostic, Report};
use memfwd::{MemoryModel, SimConfig, SmpConfig, SmpEvent, SmpMachine};
use memfwd_tagmem::{Addr, Pool};
use std::collections::{HashMap, HashSet, VecDeque};

/// Findings are deduplicated per (word, core pair) and capped — a racy
/// loop would otherwise report every iteration.
const MAX_FINDINGS: usize = 32;

/// One detected race.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceFinding {
    /// The contended word.
    pub word: Addr,
    /// The earlier access (core, is_store) in trace order.
    pub first: (usize, bool),
    /// The conflicting access.
    pub second: (usize, bool),
}

/// One MF011 finding: a load observed another core's undrained store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkewFinding {
    /// The word with the pending buffered store.
    pub word: Addr,
    /// The core that loaded the stale memory copy.
    pub loader: usize,
    /// The core whose store buffer still holds the new value.
    pub storer: usize,
}

/// One MF012 finding: a relocation handed off without a release edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandoffFinding {
    /// The old home of the relocated word (the install target).
    pub old: Addr,
    /// The new home the forwarding word points at.
    pub new_home: Addr,
    /// The core that performed the relocation.
    pub installer: usize,
    /// The core that touched the object before any release.
    pub accessor: usize,
}

/// Everything the certifier extracted from one event trace.
#[derive(Debug, Clone, Default)]
pub struct TraceAnalysis {
    /// Happens-before violations (MF009, or MF010 on install words).
    pub races: Vec<RaceFinding>,
    /// Buffered-store read skews (MF011).
    pub skews: Vec<SkewFinding>,
    /// Missing-release relocation handoffs (MF012).
    pub handoffs: Vec<HandoffFinding>,
    /// Every word some core installed a forwarding bit on.
    pub install_words: HashSet<u64>,
}

/// A vector clock over `n` cores.
type Vc = Vec<u64>;

fn dominates(a: &Vc, b: &Vc) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

fn join_into(dst: &mut Vc, src: &Vc) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

#[derive(Default)]
struct WordState {
    /// The last store: (core, its clock).
    last_write: Option<(usize, Vc)>,
    /// Reads since the last store.
    reads: Vec<(usize, Vc)>,
}

/// The per-access vector-clock step shared by plain and buffered stores.
#[allow(clippy::too_many_arguments)]
fn vc_access(
    clocks: &mut [Vc],
    words: &mut HashMap<u64, WordState>,
    races: &mut Vec<RaceFinding>,
    reported: &mut HashSet<(u64, usize, usize)>,
    core: usize,
    word: Addr,
    is_store: bool,
) {
    let mut report = |races: &mut Vec<RaceFinding>, first: (usize, bool), second: (usize, bool)| {
        let key = (word.0, first.0.min(second.0), first.0.max(second.0));
        if reported.insert(key) && races.len() < MAX_FINDINGS {
            races.push(RaceFinding {
                word,
                first,
                second,
            });
        }
    };
    clocks[core][core] += 1;
    let me = &clocks[core];
    let st = words.entry(word.0).or_default();
    if let Some((wc, wvc)) = &st.last_write {
        if *wc != core && !dominates(wvc, me) {
            report(races, (*wc, true), (core, is_store));
        }
    }
    if is_store {
        for (rc, rvc) in &st.reads {
            if *rc != core && !dominates(rvc, me) {
                report(races, (*rc, false), (core, true));
            }
        }
        st.last_write = Some((core, me.clone()));
        st.reads.clear();
    } else {
        st.reads.push((core, me.clone()));
    }
}

/// Runs the full happens-before analysis over an event trace: vector-clock
/// race detection with barrier/release-acquire/lock sync edges, pending
/// store-buffer tracking for read skews, and the relocation-handoff
/// protocol check.
pub fn analyze_trace(cores: usize, events: &[SmpEvent]) -> TraceAnalysis {
    let mut clocks: Vec<Vc> = (0..cores).map(|_| vec![0u64; cores]).collect();
    let mut words: HashMap<u64, WordState> = HashMap::new();
    let mut release_clock: HashMap<u64, Vc> = HashMap::new();
    // Per-core FIFO of words with an issued, not-yet-drained buffered
    // store. `StoreBuffered`/`FbitInstall` push, the n-th `Drain` pops the
    // n-th entry (drains complete in issue order under TSO's FIFO buffer).
    let mut pending: Vec<VecDeque<u64>> = vec![VecDeque::new(); cores];
    let mut out = TraceAnalysis::default();
    let mut reported: HashSet<(u64, usize, usize)> = HashSet::new();
    let mut skew_reported: HashSet<(u64, usize, usize)> = HashSet::new();
    for ev in events {
        match *ev {
            SmpEvent::Barrier => {
                let mut join = vec![0u64; cores];
                for vc in &clocks {
                    join_into(&mut join, vc);
                }
                for (c, vc) in clocks.iter_mut().enumerate() {
                    vc.clone_from(&join);
                    vc[c] += 1;
                }
            }
            // A fence drains (the machine emits the drains explicitly) but
            // creates no cross-core edge.
            SmpEvent::Fence { .. } => {}
            SmpEvent::Acquire { core, word } | SmpEvent::Lock { core, word } => {
                if let Some(rvc) = release_clock.get(&word.word_base().0) {
                    let rvc = rvc.clone();
                    join_into(&mut clocks[core], &rvc);
                }
            }
            SmpEvent::Release { core, word } | SmpEvent::Unlock { core, word } => {
                release_clock.insert(word.word_base().0, clocks[core].clone());
            }
            SmpEvent::StoreBuffered { core, word } => {
                pending[core].push_back(word.word_base().0);
                vc_access(
                    &mut clocks,
                    &mut words,
                    &mut out.races,
                    &mut reported,
                    core,
                    word,
                    true,
                );
            }
            SmpEvent::FbitInstall { core, word, .. } => {
                out.install_words.insert(word.word_base().0);
                pending[core].push_back(word.word_base().0);
                vc_access(
                    &mut clocks,
                    &mut words,
                    &mut out.races,
                    &mut reported,
                    core,
                    word,
                    true,
                );
            }
            SmpEvent::Drain { core, .. } => {
                pending[core].pop_front();
            }
            SmpEvent::Access {
                core,
                word,
                is_store,
            } => {
                if !is_store {
                    for (storer, fifo) in pending.iter().enumerate() {
                        if storer != core && fifo.contains(&word.word_base().0) {
                            let key = (word.word_base().0, core, storer);
                            if skew_reported.insert(key) && out.skews.len() < MAX_FINDINGS {
                                out.skews.push(SkewFinding {
                                    word: word.word_base(),
                                    loader: core,
                                    storer,
                                });
                            }
                        }
                    }
                }
                vc_access(
                    &mut clocks,
                    &mut words,
                    &mut out.races,
                    &mut reported,
                    core,
                    word,
                    is_store,
                );
            }
        }
    }
    out.handoffs = find_handoffs(events);
    out
}

/// The MF012 protocol check, in trace order: for each forwarding-bit
/// install, the first access by another core to the old word or the new
/// home must be preceded by *some* release-class operation (release,
/// unlock, or barrier) performed by the installing core after the install.
/// This is a discipline check, not a happens-before proof — it stays a
/// warning, and deliberately ignores fences, which drain without ordering.
fn find_handoffs(events: &[SmpEvent]) -> Vec<HandoffFinding> {
    let mut out: Vec<HandoffFinding> = Vec::new();
    let mut reported: HashSet<(u64, usize, usize)> = HashSet::new();
    for (i, ev) in events.iter().enumerate() {
        let SmpEvent::FbitInstall {
            core: installer,
            word,
            to,
        } = *ev
        else {
            continue;
        };
        let old = word.word_base();
        let new_home = to.word_base();
        let mut released = false;
        for later in &events[i + 1..] {
            match *later {
                SmpEvent::Barrier => released = true,
                SmpEvent::Release { core, .. } | SmpEvent::Unlock { core, .. }
                    if core == installer =>
                {
                    released = true
                }
                SmpEvent::Access { core, word: w, .. }
                | SmpEvent::StoreBuffered { core, word: w }
                    if core != installer && (w.word_base() == old || w.word_base() == new_home) =>
                {
                    if !released {
                        let key = (old.0, installer, core);
                        if reported.insert(key) && out.len() < MAX_FINDINGS {
                            out.push(HandoffFinding {
                                old,
                                new_home,
                                installer,
                                accessor: core,
                            });
                        }
                    }
                    break;
                }
                _ => {}
            }
        }
    }
    out
}

/// Runs the vector-clock race detection over an event trace, returning
/// only the plain race findings (see [`analyze_trace`] for the rest).
pub fn find_races(cores: usize, events: &[SmpEvent]) -> Vec<RaceFinding> {
    analyze_trace(cores, events).races
}

/// Converts the full trace analysis into a diagnostics [`Report`]: races
/// become MF009 — or MF010 when the contended word carries a forwarding-bit
/// install — skews become MF011, and missing-release handoffs MF012.
pub fn race_report(target: &str, cores: usize, events: &[SmpEvent]) -> Report {
    let analysis = analyze_trace(cores, events);
    let mut diagnostics = Vec::new();
    for r in &analysis.races {
        let (code, what) = if analysis.install_words.contains(&r.word.0) {
            (Code::Mf010, "forwarding-bit install on")
        } else {
            (Code::Mf009, "access to")
        };
        diagnostics.push(Diagnostic {
            code,
            step: None,
            addr: Some(r.word),
            message: format!(
                "cores {} and {} race: {what} word {:#x} ({} then {}) with no ordering edge between them",
                r.first.0,
                r.second.0,
                r.word.0,
                if r.first.1 { "store" } else { "load" },
                if r.second.1 { "store" } else { "load" },
            ),
        });
    }
    for s in &analysis.skews {
        diagnostics.push(Diagnostic {
            code: Code::Mf011,
            step: None,
            addr: Some(s.word),
            message: format!(
                "core {} loads word {:#x} while core {}'s store buffer still holds an undrained store to it",
                s.loader, s.word.0, s.storer
            ),
        });
    }
    for h in &analysis.handoffs {
        diagnostics.push(Diagnostic {
            code: Code::Mf012,
            step: None,
            addr: Some(h.old),
            message: format!(
                "core {} relocated word {:#x} -> {:#x} but core {} touched it before any release/unlock/barrier by the installer",
                h.installer, h.old.0, h.new_home.0, h.accessor
            ),
        });
    }
    Report {
        target: target.to_string(),
        steps: 0,
        diagnostics,
    }
}

// ---------------------------------------------------------------------
// Stock campaigns: the synchronization-disciplined SMP workloads the
// certifier must pass clean, plus deliberately defective ones it must
// flag (the seeded MF009 race and the seeded MF010 fbit publication).
// ---------------------------------------------------------------------

fn machine_model(cores: usize, model: MemoryModel) -> SmpMachine {
    let mut m = SmpMachine::new(
        SmpConfig {
            cores,
            ..SmpConfig::default()
        },
        SimConfig::default().with_memory_model(model),
    );
    m.enable_event_trace();
    m
}

const TRACE_ON: &str = "enable_event_trace was called when the campaign machine was built";

/// Producer/consumer rounds: one core publishes a block, a barrier, every
/// other core reads it, a barrier, and the writer role rotates.
fn campaign_producer_consumer(seed: u64, model: MemoryModel) -> (usize, Vec<SmpEvent>) {
    let cores = 4;
    let mut m = machine_model(cores, model);
    let buf = m.malloc(8 * 8);
    for round in 0..6u64 {
        let writer = ((round + seed) % cores as u64) as usize;
        for w in 0..8 {
            m.store(writer, buf.add_words(w), 8, round * 100 + w);
        }
        m.barrier();
        for c in 0..cores {
            if c != writer {
                for w in 0..8 {
                    assert_eq!(m.load(c, buf.add_words(w), 8), round * 100 + w);
                }
            }
        }
        m.barrier();
    }
    (cores, m.take_event_trace().expect(TRACE_ON))
}

/// The §2.2 false-sharing fix: per-core counters sharing one line are
/// relocated (each by its owning core) onto private lines; stale pointers
/// are then read cross-core after a barrier.
fn campaign_false_sharing_fix(_seed: u64, model: MemoryModel) -> (usize, Vec<SmpEvent>) {
    let cores = 2;
    let mut m = machine_model(cores, model);
    let shared = m.malloc(16); // both counters in one coherence line
    let line = m.line_bytes();
    let mut pools = [Pool::new(4096), Pool::new(4096)];
    let mut homes = [shared, shared + 8];
    for (c, &home) in homes.iter().enumerate() {
        m.store(c, home, 8, c as u64);
    }
    m.barrier();
    for c in 0..cores {
        let fixed = m.pool_alloc_aligned(&mut pools[c], 64, line);
        m.relocate(c, homes[c], fixed, 1);
        homes[c] = fixed;
    }
    m.barrier();
    for _ in 0..10 {
        for (c, &home) in homes.iter().enumerate() {
            let v = m.load(c, home, 8);
            m.store(c, home, 8, v + 1);
        }
    }
    m.barrier();
    // Cross-core reads through the STALE addresses: the forwarding walk
    // touches chain words the other core wrote, but the barrier orders it.
    assert_eq!(m.load(1, shared, 8), 10);
    assert_eq!(m.load(0, shared + 8, 8), 11);
    (cores, m.take_event_trace().expect(TRACE_ON))
}

/// Relocation as publication: core 0 builds and relocates a structure;
/// after a barrier every core chases the original pointers through the
/// forwarding chains.
fn campaign_relocate_publish(seed: u64, model: MemoryModel) -> (usize, Vec<SmpEvent>) {
    let cores = 3;
    let mut m = machine_model(cores, model);
    let n = 6u64;
    let old = m.malloc(8 * n);
    let new = m.malloc(8 * n);
    for w in 0..n {
        m.store(0, old.add_words(w), 8, seed ^ w);
    }
    m.relocate(0, old, new, n);
    m.barrier();
    for c in 0..cores {
        for w in 0..n {
            assert_eq!(m.load(c, old.add_words(w), 8), seed ^ w, "stale path");
        }
    }
    (cores, m.take_event_trace().expect(TRACE_ON))
}

/// The message-passing idiom under TSO: core 0 builds and relocates a
/// block, then hands it off with a `store_release`; core 1 `load_acquire`s
/// the flag and chases the stale pointers. No barrier anywhere — the
/// release→acquire edge alone must satisfy the certifier.
fn campaign_release_handoff(seed: u64) -> (usize, Vec<SmpEvent>) {
    let cores = 2;
    let mut m = machine_model(cores, MemoryModel::Tso);
    let n = 4u64;
    let old = m.malloc(8 * n);
    let new = m.malloc(8 * n);
    let flag = m.malloc(8);
    for w in 0..n {
        m.store(0, old.add_words(w), 8, seed ^ w);
    }
    m.relocate(0, old, new, n);
    m.store_release(0, flag, 8, 1);
    assert_eq!(m.load_acquire(1, flag, 8), 1);
    for w in 0..n {
        assert_eq!(m.load(1, old.add_words(w), 8), seed ^ w, "handoff path");
    }
    (cores, m.take_event_trace().expect(TRACE_ON))
}

/// A lock-disciplined shared counter under TSO: the unlock→lock edge (not
/// a barrier) orders the criticial sections.
fn campaign_locked_counter(_seed: u64) -> (usize, Vec<SmpEvent>) {
    let cores = 2;
    let mut m = machine_model(cores, MemoryModel::Tso);
    let l = m.malloc(8);
    let d = m.malloc(8);
    for i in 0..6 {
        let c = i % cores;
        m.lock(c, l);
        let v = m.load(c, d, 8);
        m.store(c, d, 8, v + 1);
        m.unlock(c, l);
    }
    m.lock(0, l);
    assert_eq!(m.load(0, d, 8), 6);
    m.unlock(0, l);
    (cores, m.take_event_trace().expect(TRACE_ON))
}

/// The stock campaigns for `model`, as (name, cores, trace) tuples. Under
/// TSO the barrier-disciplined trio runs on the buffered machine and two
/// additional campaigns exercise the release/acquire and lock edges.
pub fn stock_campaigns_model(
    seed: u64,
    model: MemoryModel,
) -> Vec<(&'static str, usize, Vec<SmpEvent>)> {
    let (c1, t1) = campaign_producer_consumer(seed, model);
    let (c2, t2) = campaign_false_sharing_fix(seed, model);
    let (c3, t3) = campaign_relocate_publish(seed, model);
    let mut out = vec![
        ("smp:producer-consumer", c1, t1),
        ("smp:false-sharing-fix", c2, t2),
        ("smp:relocate-publish", c3, t3),
    ];
    if model == MemoryModel::Tso {
        let (c4, t4) = campaign_release_handoff(seed);
        let (c5, t5) = campaign_locked_counter(seed);
        out.push(("smp:release-handoff", c4, t4));
        out.push(("smp:locked-counter", c5, t5));
    }
    out
}

/// The SC stock campaigns (the pre-weak-memory behavior).
pub fn stock_campaigns(seed: u64) -> Vec<(&'static str, usize, Vec<SmpEvent>)> {
    stock_campaigns_model(seed, MemoryModel::Sc)
}

/// A deliberately racy campaign: two cores increment the same word with no
/// barrier. The certifier must flag it (it is the seeded MF009 defect).
pub fn seeded_race_campaign() -> (&'static str, usize, Vec<SmpEvent>) {
    let cores = 2;
    let mut m = machine_model(cores, MemoryModel::Sc);
    let w = m.malloc(8);
    for i in 0..4 {
        let c = i % cores;
        let v = m.load(c, w, 8);
        m.store(c, w, 8, v + 1);
    }
    (
        "smp:seeded-race",
        cores,
        m.take_event_trace().expect(TRACE_ON),
    )
}

/// The seeded fbit-publication campaign, on the TSO machine: core 0
/// builds and relocates a block, core 1 chases the stale pointers.
///
/// With `fenced == false` nothing orders the handoff: core 1 reads the
/// stale pre-install words while the install sits in core 0's store
/// buffer — the certifier must flag MF010 (and the MF011/MF012
/// discipline warnings). With `fenced == true` the relocation is
/// published through a `store_release`/`load_acquire` pair and the exact
/// same access pattern certifies clean.
pub fn seeded_fbit_campaign(fenced: bool) -> (&'static str, usize, Vec<SmpEvent>) {
    let cores = 2;
    let mut m = machine_model(cores, MemoryModel::Tso);
    let n = 2u64;
    let old = m.malloc(8 * n);
    let new = m.malloc(8 * n);
    let flag = m.malloc(8);
    for w in 0..n {
        m.store(0, old.add_words(w), 8, 0x40 + w);
    }
    m.relocate(0, old, new, n);
    if fenced {
        m.store_release(0, flag, 8, 1);
        assert_eq!(m.load_acquire(1, flag, 8), 1);
    }
    for w in 0..n {
        let v = m.load(1, old.add_words(w), 8);
        if fenced {
            assert_eq!(v, 0x40 + w, "released handoff sees relocated data");
        }
        // Unfenced: core 1 reads whatever drained — the publication skew
        // the certifier reports.
    }
    let name = if fenced {
        "smp:fbit-publish-released"
    } else {
        "smp:fbit-publish-unfenced"
    };
    (name, cores, m.take_event_trace().expect(TRACE_ON))
}

/// Certifies the stock campaigns for `model`: one [`Report`] each.
pub fn certify_stock_campaigns_model(seed: u64, model: MemoryModel) -> Vec<Report> {
    stock_campaigns_model(seed, model)
        .into_iter()
        .map(|(name, cores, trace)| race_report(name, cores, &trace))
        .collect()
}

/// Certifies the SC stock campaigns: one [`Report`] each.
pub fn certify_stock_campaigns(seed: u64) -> Vec<Report> {
    certify_stock_campaigns_model(seed, MemoryModel::Sc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Verdict;

    #[test]
    fn stock_campaigns_are_race_free() {
        for seed in [1u64, 7, 42] {
            for model in [MemoryModel::Sc, MemoryModel::Tso] {
                for r in certify_stock_campaigns_model(seed, model) {
                    assert_eq!(r.verdict(), Verdict::Safe, "{model}/{}: {r:?}", r.target);
                }
            }
        }
    }

    #[test]
    fn seeded_race_is_flagged() {
        let (name, cores, trace) = seeded_race_campaign();
        let r = race_report(name, cores, &trace);
        assert!(r.has(Code::Mf009), "{r:?}");
        assert_eq!(r.verdict(), Verdict::Unsafe);
    }

    #[test]
    fn seeded_fbit_campaign_is_mf010_unfenced_and_clean_released() {
        let (name, cores, trace) = seeded_fbit_campaign(false);
        let r = race_report(name, cores, &trace);
        assert!(r.has(Code::Mf010), "{r:?}");
        assert!(r.has(Code::Mf012), "missing release must be flagged: {r:?}");
        assert_eq!(r.verdict(), Verdict::Unsafe);

        let (name, cores, trace) = seeded_fbit_campaign(true);
        let r = race_report(name, cores, &trace);
        assert_eq!(r.verdict(), Verdict::Safe, "released variant: {r:?}");
    }

    #[test]
    fn barrier_orders_conflicts() {
        use SmpEvent::*;
        let a = Addr(0x100);
        // store(0) ; barrier ; store(1): ordered.
        let t = vec![
            Access {
                core: 0,
                word: a,
                is_store: true,
            },
            Barrier,
            Access {
                core: 1,
                word: a,
                is_store: true,
            },
        ];
        assert!(find_races(2, &t).is_empty());
        // Without the barrier: a write-write race.
        let t = vec![t[0], t[2]];
        assert_eq!(find_races(2, &t).len(), 1);
    }

    #[test]
    fn release_acquire_orders_but_fence_does_not() {
        use SmpEvent::*;
        let a = Addr(0x100);
        let f = Addr(0x200);
        let store = Access {
            core: 0,
            word: a,
            is_store: true,
        };
        let load = Access {
            core: 1,
            word: a,
            is_store: false,
        };
        let rel = vec![
            store,
            Release { core: 0, word: f },
            Acquire { core: 1, word: f },
            load,
        ];
        assert!(find_races(2, &rel).is_empty(), "release->acquire edge");
        // An acquire with no matching release synchronizes nothing.
        let no_rel = vec![store, Acquire { core: 1, word: f }, load];
        assert_eq!(find_races(2, &no_rel).len(), 1);
        // A fence drains but does not order across cores.
        let fenced = vec![store, Fence { core: 0 }, load];
        assert_eq!(find_races(2, &fenced).len(), 1, "fence is not a sync edge");
    }

    #[test]
    fn unlock_lock_orders_critical_sections() {
        use SmpEvent::*;
        let a = Addr(0x100);
        let l = Addr(0x200);
        let t = vec![
            Lock { core: 0, word: l },
            Access {
                core: 0,
                word: a,
                is_store: true,
            },
            Unlock { core: 0, word: l },
            Lock { core: 1, word: l },
            Access {
                core: 1,
                word: a,
                is_store: true,
            },
            Unlock { core: 1, word: l },
        ];
        assert!(find_races(2, &t).is_empty());
    }

    #[test]
    fn read_read_sharing_is_not_a_race() {
        use SmpEvent::*;
        let a = Addr(0x100);
        let t = vec![
            Access {
                core: 0,
                word: a,
                is_store: false,
            },
            Access {
                core: 1,
                word: a,
                is_store: false,
            },
        ];
        assert!(find_races(2, &t).is_empty());
    }

    #[test]
    fn unsynchronized_read_of_a_write_races() {
        use SmpEvent::*;
        let a = Addr(0x100);
        let t = vec![
            Access {
                core: 0,
                word: a,
                is_store: true,
            },
            Access {
                core: 1,
                word: a,
                is_store: false,
            },
        ];
        let races = find_races(2, &t);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].word, a);
    }

    #[test]
    fn pending_buffered_store_skews_remote_loads() {
        use SmpEvent::*;
        let a = Addr(0x100);
        let buffered = StoreBuffered { core: 0, word: a };
        let remote_load = Access {
            core: 1,
            word: a,
            is_store: false,
        };
        let t = vec![buffered, remote_load];
        let an = analyze_trace(2, &t);
        assert_eq!(an.skews.len(), 1, "{an:?}");
        assert_eq!((an.skews[0].loader, an.skews[0].storer), (1, 0));
        // Once the store drains, the load reads coherent memory: no skew
        // (the race itself is still reported through the vector clocks).
        let t = vec![buffered, Drain { core: 0, word: a }, remote_load];
        assert!(analyze_trace(2, &t).skews.is_empty());
        // The storing core's own load is forwarding, not skew.
        let own = Access {
            core: 0,
            word: a,
            is_store: false,
        };
        assert!(analyze_trace(2, &[buffered, own]).skews.is_empty());
    }

    #[test]
    fn install_races_classify_as_mf010() {
        use SmpEvent::*;
        let old = Addr(0x100);
        let new = Addr(0x300);
        let t = vec![
            FbitInstall {
                core: 0,
                word: old,
                to: new,
            },
            Access {
                core: 1,
                word: old,
                is_store: false,
            },
        ];
        let r = race_report("t", 2, &t);
        assert!(r.has(Code::Mf010), "{r:?}");
        assert!(!r.has(Code::Mf009), "install race is MF010, not MF009");
        assert!(r.has(Code::Mf012), "no release before the remote access");
    }

    #[test]
    fn handoff_with_release_is_not_mf012() {
        use SmpEvent::*;
        let old = Addr(0x100);
        let new = Addr(0x300);
        let f = Addr(0x200);
        let t = vec![
            FbitInstall {
                core: 0,
                word: old,
                to: new,
            },
            Drain { core: 0, word: old },
            Release { core: 0, word: f },
            Acquire { core: 1, word: f },
            Access {
                core: 1,
                word: old,
                is_store: false,
            },
        ];
        let an = analyze_trace(2, &t);
        assert!(an.handoffs.is_empty(), "{an:?}");
        // A fence in place of the release does not qualify.
        let t = vec![
            FbitInstall {
                core: 0,
                word: old,
                to: new,
            },
            Drain { core: 0, word: old },
            Fence { core: 0 },
            Access {
                core: 1,
                word: old,
                is_store: false,
            },
        ];
        assert_eq!(analyze_trace(2, &t).handoffs.len(), 1);
    }

    #[test]
    fn sc_traces_never_fire_weak_memory_codes() {
        for seed in [1u64, 7] {
            for (name, cores, trace) in stock_campaigns_model(seed, MemoryModel::Sc) {
                let an = analyze_trace(cores, &trace);
                assert!(an.install_words.is_empty(), "{name}");
                assert!(an.skews.is_empty() && an.handoffs.is_empty(), "{name}");
            }
        }
        let (name, cores, trace) = seeded_race_campaign();
        let r = race_report(name, cores, &trace);
        assert!(!r.has(Code::Mf010) && !r.has(Code::Mf011) && !r.has(Code::Mf012));
    }
}
