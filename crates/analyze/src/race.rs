//! The SMP happens-before race certifier.
//!
//! The SMP model's only synchronization primitive is the global
//! [`SmpMachine::barrier`], so its happens-before relation is simple:
//! program order within a core, plus every barrier ordering everything
//! before it (on all cores) ahead of everything after it. The detector
//! still runs full vector clocks over the event trace — the textbook
//! algorithm — so it stays correct if finer-grained synchronization events
//! are ever added to [`SmpEvent`].
//!
//! Two accesses **race** when they touch the same word from different
//! cores, at least one is a store, and neither happens-before the other.
//! A racy campaign is timing-dependent in a way the simulator's
//! deterministic interleaving hides; the certifier surfaces it as an
//! [`MF009`](crate::diag::Code::Mf009) diagnostic.

use crate::diag::{Code, Diagnostic, Report};
use memfwd::{SmpConfig, SmpEvent, SmpMachine};
use memfwd_tagmem::{Addr, Pool};
use std::collections::HashMap;

/// One detected race.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceFinding {
    /// The contended word.
    pub word: Addr,
    /// The earlier access (core, is_store) in trace order.
    pub first: (usize, bool),
    /// The conflicting access.
    pub second: (usize, bool),
}

/// A vector clock over `n` cores.
type Vc = Vec<u64>;

fn dominates(a: &Vc, b: &Vc) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

#[derive(Default)]
struct WordState {
    /// The last store: (core, is_store flag is implicit, its clock).
    last_write: Option<(usize, Vc)>,
    /// Reads since the last store.
    reads: Vec<(usize, Vc)>,
}

/// Runs the vector-clock race detection over an event trace.
///
/// Findings are deduplicated per (word, core pair) and capped at 32 — a
/// racy loop would otherwise report every iteration.
pub fn find_races(cores: usize, events: &[SmpEvent]) -> Vec<RaceFinding> {
    let mut clocks: Vec<Vc> = (0..cores).map(|_| vec![0u64; cores]).collect();
    let mut words: HashMap<u64, WordState> = HashMap::new();
    let mut findings = Vec::new();
    let mut reported: std::collections::HashSet<(u64, usize, usize)> =
        std::collections::HashSet::new();
    let mut report = |findings: &mut Vec<RaceFinding>,
                      word: Addr,
                      first: (usize, bool),
                      second: (usize, bool)| {
        let key = (word.0, first.0.min(second.0), first.0.max(second.0));
        if reported.insert(key) && findings.len() < 32 {
            findings.push(RaceFinding {
                word,
                first,
                second,
            });
        }
    };
    for ev in events {
        match *ev {
            SmpEvent::Barrier => {
                let mut join = vec![0u64; cores];
                for vc in &clocks {
                    for (j, v) in vc.iter().enumerate() {
                        join[j] = join[j].max(*v);
                    }
                }
                for (c, vc) in clocks.iter_mut().enumerate() {
                    vc.clone_from(&join);
                    vc[c] += 1;
                }
            }
            SmpEvent::Access {
                core,
                word,
                is_store,
            } => {
                clocks[core][core] += 1;
                let me = &clocks[core];
                let st = words.entry(word.0).or_default();
                if let Some((wc, wvc)) = &st.last_write {
                    if *wc != core && !dominates(wvc, me) {
                        report(&mut findings, word, (*wc, true), (core, is_store));
                    }
                }
                if is_store {
                    for (rc, rvc) in &st.reads {
                        if *rc != core && !dominates(rvc, me) {
                            report(&mut findings, word, (*rc, false), (core, true));
                        }
                    }
                    st.last_write = Some((core, me.clone()));
                    st.reads.clear();
                } else {
                    st.reads.push((core, me.clone()));
                }
            }
        }
    }
    findings
}

/// Converts race findings into a diagnostics [`Report`].
pub fn race_report(target: &str, cores: usize, events: &[SmpEvent]) -> Report {
    let diagnostics = find_races(cores, events)
        .into_iter()
        .map(|r| Diagnostic {
            code: Code::Mf009,
            step: None,
            addr: Some(r.word),
            message: format!(
                "cores {} and {} access word {:#x} ({} then {}) with no barrier between them",
                r.first.0,
                r.second.0,
                r.word.0,
                if r.first.1 { "store" } else { "load" },
                if r.second.1 { "store" } else { "load" },
            ),
        })
        .collect();
    Report {
        target: target.to_string(),
        steps: 0,
        diagnostics,
    }
}

// ---------------------------------------------------------------------
// Stock campaigns: the barrier-disciplined SMP workloads the certifier
// must pass clean, plus one deliberately racy workload it must flag.
// ---------------------------------------------------------------------

fn machine(cores: usize) -> SmpMachine {
    let mut m = SmpMachine::new(
        SmpConfig {
            cores,
            ..SmpConfig::default()
        },
        Default::default(),
    );
    m.enable_event_trace();
    m
}

/// Producer/consumer rounds: one core publishes a block, a barrier, every
/// other core reads it, a barrier, and the writer role rotates.
fn campaign_producer_consumer(seed: u64) -> (usize, Vec<SmpEvent>) {
    let cores = 4;
    let mut m = machine(cores);
    let buf = m.malloc(8 * 8);
    for round in 0..6u64 {
        let writer = ((round + seed) % cores as u64) as usize;
        for w in 0..8 {
            m.store(writer, buf.add_words(w), 8, round * 100 + w);
        }
        m.barrier();
        for c in 0..cores {
            if c != writer {
                for w in 0..8 {
                    assert_eq!(m.load(c, buf.add_words(w), 8), round * 100 + w);
                }
            }
        }
        m.barrier();
    }
    (
        cores,
        m.take_event_trace()
            .expect("enable_event_trace was called when the campaign machine was built"),
    )
}

/// The §2.2 false-sharing fix: per-core counters sharing one line are
/// relocated (each by its owning core) onto private lines; stale pointers
/// are then read cross-core after a barrier.
fn campaign_false_sharing_fix(_seed: u64) -> (usize, Vec<SmpEvent>) {
    let cores = 2;
    let mut m = machine(cores);
    let shared = m.malloc(16); // both counters in one coherence line
    let line = m.line_bytes();
    let mut pools = [Pool::new(4096), Pool::new(4096)];
    let mut homes = [shared, shared + 8];
    for (c, &home) in homes.iter().enumerate() {
        m.store(c, home, 8, c as u64);
    }
    m.barrier();
    for c in 0..cores {
        let fixed = m.pool_alloc_aligned(&mut pools[c], 64, line);
        m.relocate(c, homes[c], fixed, 1);
        homes[c] = fixed;
    }
    m.barrier();
    for _ in 0..10 {
        for (c, &home) in homes.iter().enumerate() {
            let v = m.load(c, home, 8);
            m.store(c, home, 8, v + 1);
        }
    }
    m.barrier();
    // Cross-core reads through the STALE addresses: the forwarding walk
    // touches chain words the other core wrote, but the barrier orders it.
    assert_eq!(m.load(1, shared, 8), 10);
    assert_eq!(m.load(0, shared + 8, 8), 11);
    (
        cores,
        m.take_event_trace()
            .expect("enable_event_trace was called when the campaign machine was built"),
    )
}

/// Relocation as publication: core 0 builds and relocates a structure;
/// after a barrier every core chases the original pointers through the
/// forwarding chains.
fn campaign_relocate_publish(seed: u64) -> (usize, Vec<SmpEvent>) {
    let cores = 3;
    let mut m = machine(cores);
    let n = 6u64;
    let old = m.malloc(8 * n);
    let new = m.malloc(8 * n);
    for w in 0..n {
        m.store(0, old.add_words(w), 8, seed ^ w);
    }
    m.relocate(0, old, new, n);
    m.barrier();
    for c in 0..cores {
        for w in 0..n {
            assert_eq!(m.load(c, old.add_words(w), 8), seed ^ w, "stale path");
        }
    }
    (
        cores,
        m.take_event_trace()
            .expect("enable_event_trace was called when the campaign machine was built"),
    )
}

/// The stock campaigns, as (name, cores, trace) tuples.
pub fn stock_campaigns(seed: u64) -> Vec<(&'static str, usize, Vec<SmpEvent>)> {
    let (c1, t1) = campaign_producer_consumer(seed);
    let (c2, t2) = campaign_false_sharing_fix(seed);
    let (c3, t3) = campaign_relocate_publish(seed);
    vec![
        ("smp:producer-consumer", c1, t1),
        ("smp:false-sharing-fix", c2, t2),
        ("smp:relocate-publish", c3, t3),
    ]
}

/// A deliberately racy campaign: two cores increment the same word with no
/// barrier. The certifier must flag it (it is the seeded MF009 defect).
pub fn seeded_race_campaign() -> (&'static str, usize, Vec<SmpEvent>) {
    let cores = 2;
    let mut m = machine(cores);
    let w = m.malloc(8);
    for i in 0..4 {
        let c = i % cores;
        let v = m.load(c, w, 8);
        m.store(c, w, 8, v + 1);
    }
    (
        "smp:seeded-race",
        cores,
        m.take_event_trace()
            .expect("enable_event_trace was called when the campaign machine was built"),
    )
}

/// Certifies the stock campaigns: one [`Report`] each.
pub fn certify_stock_campaigns(seed: u64) -> Vec<Report> {
    stock_campaigns(seed)
        .into_iter()
        .map(|(name, cores, trace)| race_report(name, cores, &trace))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Verdict;

    #[test]
    fn stock_campaigns_are_race_free() {
        for seed in [1u64, 7, 42] {
            for r in certify_stock_campaigns(seed) {
                assert_eq!(r.verdict(), Verdict::Safe, "{}: {r:?}", r.target);
            }
        }
    }

    #[test]
    fn seeded_race_is_flagged() {
        let (name, cores, trace) = seeded_race_campaign();
        let r = race_report(name, cores, &trace);
        assert!(r.has(Code::Mf009), "{r:?}");
        assert_eq!(r.verdict(), Verdict::Unsafe);
    }

    #[test]
    fn barrier_orders_conflicts() {
        use SmpEvent::*;
        let a = Addr(0x100);
        // store(0) ; barrier ; store(1): ordered.
        let t = vec![
            Access {
                core: 0,
                word: a,
                is_store: true,
            },
            Barrier,
            Access {
                core: 1,
                word: a,
                is_store: true,
            },
        ];
        assert!(find_races(2, &t).is_empty());
        // Without the barrier: a write-write race.
        let t = vec![t[0], t[2]];
        assert_eq!(find_races(2, &t).len(), 1);
    }

    #[test]
    fn read_read_sharing_is_not_a_race() {
        use SmpEvent::*;
        let a = Addr(0x100);
        let t = vec![
            Access {
                core: 0,
                word: a,
                is_store: false,
            },
            Access {
                core: 1,
                word: a,
                is_store: false,
            },
        ];
        assert!(find_races(2, &t).is_empty());
    }

    #[test]
    fn unsynchronized_read_of_a_write_races() {
        use SmpEvent::*;
        let a = Addr(0x100);
        let t = vec![
            Access {
                core: 0,
                word: a,
                is_store: true,
            },
            Access {
                core: 1,
                word: a,
                is_store: false,
            },
        ];
        let races = find_races(2, &t);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].word, a);
    }
}
