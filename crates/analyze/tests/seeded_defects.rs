//! Seeded-defect fixtures: one plan file per diagnostic code, each of which
//! must trip exactly the code it seeds — and nothing in `Code::ALL` may be
//! left without a fixture-backed test (no silent MF0xx).

use memfwd_analyze::diag::{Code, Severity, Verdict};
use memfwd_analyze::planfile::parse_plan;
use memfwd_analyze::verify::verify_plan;

fn fixture(name: &str) -> String {
    let path = format!("{}/fixtures/{}", env!("CARGO_MANIFEST_DIR"), name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn verify_fixture(name: &str) -> memfwd_analyze::diag::Report {
    let plan = parse_plan(&fixture(name)).expect("fixture parses");
    verify_plan(&format!("fixture:{name}"), &plan)
}

/// Which plan fixture seeds each code. MF009 is a race, not a plan
/// defect, and is exercised by the race-campaign test below; MF010-MF012
/// are weak-memory findings seeded by litmus fixtures (next table).
fn fixture_for(code: Code) -> Option<&'static str> {
    match code {
        Code::Mf001 => Some("mf001_cycle.plan"),
        Code::Mf002 => Some("mf002_budget.plan"),
        Code::Mf003 => Some("mf003_overlap.plan"),
        Code::Mf004 => Some("mf004_forwarded_target.plan"),
        Code::Mf005 => Some("mf005_double_reloc.plan"),
        Code::Mf006 => Some("mf006_oob.plan"),
        Code::Mf007 => Some("mf007_null.plan"),
        Code::Mf008 => Some("mf008_misaligned.plan"),
        Code::Mf009 | Code::Mf010 | Code::Mf011 | Code::Mf012 => None,
    }
}

/// Which litmus fixture seeds each weak-memory code (certified under TSO
/// on the canonical schedule).
fn litmus_fixture_for(code: Code) -> Option<&'static str> {
    match code {
        Code::Mf010 => Some("mf010_unfenced_install.litmus"),
        Code::Mf011 => Some("mf011_buffered_skew.litmus"),
        Code::Mf012 => Some("mf012_missing_release.litmus"),
        _ => None,
    }
}

#[test]
fn every_code_has_a_seeded_defect_that_fires_it() {
    for code in Code::ALL {
        let Some(name) = fixture_for(code) else {
            // MF009: covered by `seeded_race_fires_mf009`. MF010-MF012:
            // covered by `every_weak_memory_code_has_a_litmus_fixture`.
            assert!(
                code == Code::Mf009 || litmus_fixture_for(code).is_some(),
                "{code} has neither a plan nor a litmus fixture"
            );
            continue;
        };
        let report = verify_fixture(name);
        assert!(
            report.has(code),
            "{name} must fire {} but produced: {:?}",
            code.as_str(),
            report.diagnostics
        );
        match code.severity() {
            Severity::Error => assert_eq!(report.verdict(), Verdict::Unsafe, "{name}"),
            Severity::Warning => {
                assert!(report.verdict() >= Verdict::SafeWithWarnings, "{name}")
            }
        }
    }
}

#[test]
fn every_weak_memory_code_has_a_litmus_fixture() {
    use memfwd::MemoryModel;
    for code in [Code::Mf010, Code::Mf011, Code::Mf012] {
        let name = litmus_fixture_for(code).expect("weak-memory code has a litmus fixture");
        let test = memfwd_analyze::parse_litmus(&fixture(name), name)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = memfwd_analyze::certify_litmus(&test, MemoryModel::Tso)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            report.has(code),
            "{name} must fire {} under TSO but produced: {:?}",
            code.as_str(),
            report.diagnostics
        );
        // Under SC the same program carries no buffer events, so the
        // weak-memory code cannot fire (the race itself may remain).
        let sc = memfwd_analyze::certify_litmus(&test, MemoryModel::Sc)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        for weak in [Code::Mf010, Code::Mf011, Code::Mf012] {
            assert!(!sc.has(weak), "{name}: {weak} fired under SC: {sc:?}");
        }
        // And the fixture's own declared expectations must hold.
        let result = memfwd_analyze::check_litmus(&test).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(result.passed(), "{name}: {:?}", result.violations);
    }
}

#[test]
fn seeded_race_fires_mf009() {
    let (name, cores, events) = memfwd_analyze::race::seeded_race_campaign();
    let report = memfwd_analyze::race_report(name, cores, &events);
    assert!(report.has(Code::Mf009), "seeded race must fire MF009");
    assert_eq!(report.verdict(), Verdict::Unsafe);
}

#[test]
fn clean_fixture_is_certified_safe() {
    let report = verify_fixture("clean.plan");
    assert_eq!(
        report.verdict(),
        Verdict::Safe,
        "clean.plan must carry zero diagnostics, got {:?}",
        report.diagnostics
    );
}

#[test]
fn warning_fixtures_do_not_escalate_to_unsafe() {
    for name in ["mf004_forwarded_target.plan", "mf005_double_reloc.plan"] {
        let report = verify_fixture(name);
        assert_eq!(report.verdict(), Verdict::SafeWithWarnings, "{name}");
    }
}

/// The shadow sanitizer must agree with the verdict on every fixture:
/// certified plans run fault-free, faulting plans were flagged with a code
/// that predicts the observed fault kind.
#[cfg(feature = "shadow")]
#[test]
fn shadow_cross_validates_every_fixture() {
    let fixtures = [
        "clean.plan",
        "mf001_cycle.plan",
        "mf002_budget.plan",
        "mf003_overlap.plan",
        "mf004_forwarded_target.plan",
        "mf005_double_reloc.plan",
        "mf006_oob.plan",
        "mf007_null.plan",
        "mf008_misaligned.plan",
    ];
    for name in fixtures {
        let plan = parse_plan(&fixture(name)).expect("fixture parses");
        let outcome =
            memfwd_analyze::shadow::cross_validate_plan(&format!("fixture:{name}"), &plan)
                .unwrap_or_else(|m| panic!("{name}: shadow mismatch {m:?}"));
        // Fixtures whose defect manifests as a runtime fault must actually
        // fault under the probe — otherwise the fixture is mislabeled.
        match name {
            "mf001_cycle.plan"
            | "mf002_budget.plan"
            | "mf007_null.plan"
            | "mf008_misaligned.plan" => {
                assert!(outcome.fault.is_some(), "{name} should fault at runtime")
            }
            "clean.plan" => assert!(outcome.fault.is_none(), "clean.plan must not fault"),
            // MF003/MF006 corrupt silently; MF004/MF005 are legal.
            _ => {}
        }
    }
}
