//! Litmus-test gate: every `.litmus` file under the repo-level
//! `tests/litmus/` directory must model-check clean.
//!
//! For each test this enumerates all interleavings under SC and TSO,
//! replays each schedule on a real `SmpMachine`, and checks the
//! declared `allowed` / `forbidden` / `certify` expectations plus the
//! two soundness cross-validations (the DRF guarantee and the
//! weak-outcome-implies-reported-race completeness check). A failure
//! here means either the TSO semantics or the certifier drifted from
//! the pinned memory-model contract.

use std::fs;
use std::path::PathBuf;

use memfwd_analyze::{check_litmus, parse_litmus, render_litmus_human};

fn litmus_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/litmus"))
}

/// Load every `.litmus` file in `tests/litmus/`, sorted by name so the
/// gate's output order is stable.
fn suite() -> Vec<(String, String)> {
    let mut files: Vec<_> = fs::read_dir(litmus_dir())
        .expect("tests/litmus directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "litmus"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "tests/litmus must not be empty");
    files
        .into_iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let text = fs::read_to_string(&p).expect("readable litmus file");
            (name, text)
        })
        .collect()
}

#[test]
fn every_litmus_test_passes_under_both_models() {
    let mut failures = Vec::new();
    for (file, text) in suite() {
        let test = match parse_litmus(&text, file.trim_end_matches(".litmus")) {
            Ok(t) => t,
            Err(e) => {
                failures.push(format!("{file}: parse error: {e}"));
                continue;
            }
        };
        match check_litmus(&test) {
            Ok(result) if result.passed() => {}
            Ok(result) => {
                failures.push(format!(
                    "{file}:\n{}",
                    render_litmus_human(std::slice::from_ref(&result))
                ));
            }
            Err(e) => failures.push(format!("{file}: check error: {e}")),
        }
    }
    assert!(
        failures.is_empty(),
        "litmus gate failures:\n{}",
        failures.join("\n")
    );
}

#[test]
fn suite_covers_the_canonical_shapes() {
    let names: Vec<String> = suite().into_iter().map(|(n, _)| n).collect();
    for required in [
        "sb.litmus",
        "sb_fences.litmus",
        "mp.litmus",
        "mp_release.litmus",
        "lb.litmus",
        "iriw.litmus",
        "fbit_install.litmus",
        "fbit_install_released.litmus",
        "locked.litmus",
    ] {
        assert!(
            names.iter().any(|n| n == required),
            "litmus suite is missing {required}"
        );
    }
}

#[test]
fn sb_is_the_model_discriminator() {
    // The acceptance criterion for the suite: the SC-forbidden store
    // buffering outcome is actually observed under TSO, i.e. the two
    // models are distinguishable by enumeration, not just by fiat.
    let (_, text) = suite()
        .into_iter()
        .find(|(n, _)| n == "sb.litmus")
        .expect("sb.litmus present");
    let test = parse_litmus(&text, "sb").unwrap();
    let result = check_litmus(&test).expect("sb model-checks");
    assert!(
        result.passed(),
        "{}",
        render_litmus_human(std::slice::from_ref(&result))
    );
    let sc = &result.checks[0];
    let tso = &result.checks[1];
    let weak: Vec<_> = tso.outcomes.difference(&sc.outcomes).collect();
    assert_eq!(weak.len(), 1, "TSO adds exactly the store-load reordering");
    let outcome = weak[0];
    assert!(
        outcome.iter().all(|(_, v)| *v == 0),
        "the weak outcome is r0=0 r1=0"
    );
}
