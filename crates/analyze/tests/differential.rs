//! App-level differential suite: capture the relocation schedule of every
//! stock application, verify it statically, and cross-check the verdict
//! against the run's actual outcome — 8 apps × 3 seeds. The optimized
//! variants relocate aggressively; all of their captured plans must be
//! certified safe and run fault-free, with zero false positives.

#![cfg(feature = "shadow")]

use memfwd_analyze::capture::{app_target, capture_app_plan};
use memfwd_analyze::diag::Verdict;
use memfwd_analyze::shadow::check_consistency;
use memfwd_analyze::verify::verify_plan;
use memfwd_apps::{App, RunConfig, Variant};

const SEEDS: [u64; 3] = [7, 12345, 99];

fn cfg(variant: Variant, seed: u64) -> RunConfig {
    let mut cfg = RunConfig::new(variant).smoke();
    cfg.seed = seed;
    cfg
}

#[test]
fn optimized_apps_capture_certified_safe_plans() {
    for app in App::ALL {
        for seed in SEEDS {
            let cfg = cfg(Variant::Optimized, seed);
            let captured = capture_app_plan(app, &cfg);
            let target = app_target(app, &cfg);
            let checksum = captured
                .result
                .unwrap_or_else(|f| panic!("{target} seed {seed} faulted: {f:?}"))
                .checksum;
            let report = verify_plan(&target, &captured.plan);
            assert_eq!(
                report.verdict(),
                Verdict::Safe,
                "{target} seed {seed}: captured plan must verify clean \
                 (zero false positives), got {:?}",
                report.diagnostics
            );
            // The run succeeded and the report carries no errors — the
            // consistency contract is trivially satisfied, but assert it
            // through the same gate the shadow sanitizer uses.
            check_consistency(&report, None, captured.plan.hard_hop_budget.is_some())
                .unwrap_or_else(|m| panic!("{target} seed {seed}: {m:?}"));
            assert_ne!(checksum, 0, "{target} seed {seed}: degenerate checksum");
        }
    }
}

#[test]
fn original_variants_relocate_nothing_and_verify_clean() {
    for app in App::ALL {
        let cfg = cfg(Variant::Original, SEEDS[0]);
        let captured = capture_app_plan(app, &cfg);
        let target = app_target(app, &cfg);
        assert!(
            captured.plan.steps.is_empty(),
            "{target}: original variant should not relocate"
        );
        let report = verify_plan(&target, &captured.plan);
        assert_eq!(report.verdict(), Verdict::Safe, "{target}");
    }
}

/// Checksums must agree across variants at each seed — relocation is safe —
/// and the certified plan is exactly the schedule that produced them.
#[test]
fn certified_runs_preserve_checksums_across_variants() {
    for app in App::ALL {
        for seed in SEEDS {
            let orig = capture_app_plan(app, &cfg(Variant::Original, seed));
            let opt = capture_app_plan(app, &cfg(Variant::Optimized, seed));
            let co = orig.result.expect("original runs clean").checksum;
            let cp = opt.result.expect("optimized runs clean").checksum;
            assert_eq!(co, cp, "{}: checksum diverged at seed {seed}", app.name());
        }
    }
}

/// The SMP certifier: stock barrier-disciplined campaigns are race-free at
/// several seeds; the seeded unsynchronized campaign is flagged.
#[test]
fn race_certifier_end_to_end() {
    for seed in SEEDS {
        for report in memfwd_analyze::certify_stock_campaigns(seed) {
            assert_eq!(
                report.verdict(),
                Verdict::Safe,
                "{} seed {seed}: {:?}",
                report.target,
                report.diagnostics
            );
        }
    }
    let (name, cores, events) = memfwd_analyze::race::seeded_race_campaign();
    let report = memfwd_analyze::race_report(name, cores, &events);
    assert_eq!(report.verdict(), Verdict::Unsafe);
}
