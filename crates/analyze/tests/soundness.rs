//! Differential property test for verifier soundness: on random plans, a
//! report with no error diagnostics must imply a fault-free execution, and
//! every fault an execution does raise must have been predicted by some
//! flagged code — the two directions of the soundness contract, checked by
//! the shadow sanitizer on hundreds of generated plans.

#![cfg(feature = "shadow")]

use memfwd::{Addr, RelocPlan, RelocStep};
use memfwd_analyze::diag::Severity;
use memfwd_analyze::shadow::{check_consistency, run_plan};
use memfwd_analyze::verify::verify_plan;
use proptest::prelude::*;

const HEAP_BASE: u64 = 0x10_000;
const HEAP_CAPACITY: u64 = 0x10_000;

/// Maps a raw `(src_slot, tgt_slot, words)` triple into a step over a small
/// word arena. Slot 0 for the target becomes a null pointer and odd raw
/// sources are left misaligned, so the generator seeds MF007/MF008 defects
/// alongside cycles, overlaps, and double relocations.
fn step_from_raw(raw: (u64, u64, u64)) -> RelocStep {
    let (src_slot, tgt_slot, words) = raw;
    let src = if src_slot % 17 == 0 {
        HEAP_BASE + src_slot * 8 + 4 // seeded misalignment (MF008)
    } else {
        HEAP_BASE + (src_slot % 48) * 8
    };
    let tgt = if tgt_slot == 0 {
        0 // seeded null target (MF007)
    } else {
        HEAP_BASE + (tgt_slot % 48) * 8
    };
    RelocStep {
        src: Addr(src),
        tgt: Addr(tgt),
        words,
    }
}

fn plan_from_raw(raw_steps: Vec<(u64, u64, u64)>, budget_sel: u32) -> RelocPlan {
    let mut plan = RelocPlan::new(Addr(HEAP_BASE), HEAP_CAPACITY);
    plan.hard_hop_budget = match budget_sel {
        0 => None,
        b => Some(b),
    };
    plan.steps = raw_steps.into_iter().map(step_from_raw).collect();
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Both soundness directions on arbitrary small plans.
    #[test]
    fn no_errors_implies_fault_free_and_faults_are_predicted(
        raw_steps in proptest::collection::vec((0u64..50, 0u64..50, 1u64..4), 1..10),
        budget_sel in 0u32..6,
    ) {
        let plan = plan_from_raw(raw_steps, budget_sel);
        let report = verify_plan("prop", &plan);
        let fault = run_plan(&plan).err();

        let has_errors = report
            .diagnostics
            .iter()
            .any(|d| d.severity() == Severity::Error);
        prop_assert!(
            fault.is_none() || has_errors,
            "certified-safe plan faulted: {:?}\nplan: {:?}\nreport: {:?}",
            fault,
            plan,
            report.diagnostics
        );
        let consistency =
            check_consistency(&report, fault.as_ref(), plan.hard_hop_budget.is_some());
        prop_assert!(
            consistency.is_ok(),
            "shadow mismatch {:?}\nplan: {:?}\nreport: {:?}",
            consistency,
            plan,
            report.diagnostics
        );
    }

    /// Dense plans over a tiny arena force chain collisions (cycles, deep
    /// chains, re-relocations) far more often than the sparse generator —
    /// the adversarial half of the sweep.
    #[test]
    fn consistency_holds_on_dense_chain_graphs(
        raw_steps in proptest::collection::vec((1u64..8, 1u64..8, 1u64..2), 2..14),
        budget_sel in 0u32..4,
    ) {
        let mut plan = RelocPlan::new(Addr(HEAP_BASE), HEAP_CAPACITY);
        plan.hard_hop_budget = match budget_sel {
            0 => None,
            b => Some(b),
        };
        plan.steps = raw_steps
            .into_iter()
            .map(|(s, t, w)| RelocStep {
                src: Addr(HEAP_BASE + s * 8),
                tgt: Addr(HEAP_BASE + t * 8),
                words: w,
            })
            .collect();
        let report = verify_plan("prop-dense", &plan);
        let fault = run_plan(&plan).err();
        let consistency =
            check_consistency(&report, fault.as_ref(), plan.hard_hop_budget.is_some());
        prop_assert!(
            consistency.is_ok(),
            "shadow mismatch {:?}\nplan: {:?}\nreport: {:?}",
            consistency,
            plan,
            report.diagnostics
        );
    }
}
