//! The paper's qualitative results as executable assertions, at bench
//! scale. These take minutes, so they are `#[ignore]`d by default; run
//! them with:
//!
//! ```console
//! cargo test --release --test paper_shapes -- --ignored
//! ```

use memfwd_repro::apps::{run_ok as run, App, RunConfig, Variant};

fn cell(app: App, variant: Variant, line: u64) -> memfwd_repro::apps::AppOutput {
    let mut cfg = RunConfig::new(variant);
    cfg.sim = cfg.sim.with_line_bytes(line);
    run(app, &cfg)
}

#[test]
#[ignore = "bench-scale: run explicitly with --ignored"]
fn fig5_optimized_beats_original_except_compress() {
    for app in App::FIG5 {
        for line in [32u64, 64, 128] {
            let n = cell(app, Variant::Original, line);
            let l = cell(app, Variant::Optimized, line);
            assert_eq!(n.checksum, l.checksum);
            let speedup = l.stats.speedup_over(&n.stats);
            if app == App::Compress && line < 128 {
                assert!(
                    speedup < 1.0,
                    "{app}@{line}B: compress must lose at short lines, got {speedup:.2}"
                );
            } else {
                assert!(
                    speedup > 0.99,
                    "{app}@{line}B: L must not lose, got {speedup:.2}"
                );
            }
        }
    }
}

#[test]
#[ignore = "bench-scale: run explicitly with --ignored"]
fn fig5_speedups_grow_with_line_size_for_list_apps() {
    for app in [App::Health, App::Mst, App::Vis] {
        let mut prev = 0.0;
        for line in [32u64, 64, 128] {
            let n = cell(app, Variant::Original, line);
            let l = cell(app, Variant::Optimized, line);
            let s = l.stats.speedup_over(&n.stats);
            assert!(
                s > prev,
                "{app}: speedup must grow with line size ({s:.2} after {prev:.2})"
            );
            prev = s;
        }
        assert!(
            prev > 1.5,
            "{app}: large gain expected at 128B, got {prev:.2}"
        );
    }
}

#[test]
#[ignore = "bench-scale: run explicitly with --ignored"]
fn fig5_unoptimized_degrades_with_line_size_without_locality() {
    for app in [App::Mst, App::Vis, App::Bh, App::Compress] {
        let at32 = cell(app, Variant::Original, 32).stats.cycles();
        let at128 = cell(app, Variant::Original, 128).stats.cycles();
        assert!(
            at128 > at32,
            "{app}: longer lines must hurt the sparse original layout"
        );
    }
}

#[test]
#[ignore = "bench-scale: run explicitly with --ignored"]
fn fig6_optimized_cuts_misses_and_bandwidth_for_linearized_apps() {
    for app in [App::Health, App::Mst, App::Vis] {
        let n = cell(app, Variant::Original, 128);
        let l = cell(app, Variant::Optimized, 128);
        assert!(
            (l.stats.cache.loads.misses() as f64) < 0.65 * n.stats.cache.loads.misses() as f64,
            "{app}: expected >35% miss reduction at 128B"
        );
        assert!(
            l.stats.bytes_l2_mem < n.stats.bytes_l2_mem,
            "{app}: bandwidth must drop"
        );
    }
}

#[test]
#[ignore = "bench-scale: run explicitly with --ignored"]
fn fig7_linearization_prefetching_beats_pointer_chase_prefetching() {
    // As in the paper, each case uses its best block size.
    let best = |variant: Variant, app: App| {
        [1u64, 2, 4]
            .into_iter()
            .map(|b| run(app, &RunConfig::new(variant).with_prefetch(b)))
            .min_by_key(|o| o.stats.cycles())
            .expect("non-empty")
    };
    for app in [App::Health, App::Radiosity, App::Vis, App::Eqntott] {
        let np = best(Variant::Original, app);
        let lp = best(Variant::Optimized, app);
        assert_eq!(np.checksum, lp.checksum);
        assert!(
            lp.stats.cycles() < np.stats.cycles(),
            "{app}: LP must beat NP (pointer chasing limits NP)"
        );
    }
}

#[test]
#[ignore = "bench-scale: run explicitly with --ignored"]
fn fig10_smv_orderings_hold() {
    let n = run(App::Smv, &RunConfig::new(Variant::Original));
    let l = run(App::Smv, &RunConfig::new(Variant::Optimized));
    let mut pcfg = RunConfig::new(Variant::Optimized);
    pcfg.sim = pcfg.sim.with_perfect_forwarding();
    let p = run(App::Smv, &pcfg);
    assert_eq!(n.checksum, l.checksum);
    assert_eq!(n.checksum, p.checksum);
    // (a) L slower than N; Perf between Perf < N marginally.
    assert!(
        l.stats.cycles() > n.stats.cycles(),
        "L must pay for forwarding"
    );
    assert!(
        p.stats.cycles() < l.stats.cycles(),
        "Perf recovers the loss"
    );
    assert!(
        (p.stats.cycles() as f64) > 0.85 * n.stats.cycles() as f64,
        "Perf improves on N only marginally"
    );
    // (c) a few percent of loads forwarded, ~1-3% of stores, one hop.
    let fl = l.stats.fwd.forwarded_load_fraction();
    let fs = l.stats.fwd.forwarded_store_fraction();
    assert!((0.03..0.15).contains(&fl), "load fwd fraction {fl}");
    assert!((0.005..0.05).contains(&fs), "store fwd fraction {fs}");
    assert_eq!(
        l.stats.fwd.load_hops[2..].iter().sum::<u64>(),
        0,
        "1 hop only"
    );
    // (b) cache pollution: L touches old + new locations.
    assert!(l.stats.cache.loads.misses() > n.stats.cache.loads.misses());
}
