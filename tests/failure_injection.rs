//! Failure injection: corrupted forwarding state, resource exhaustion and
//! API misuse must fail loudly and precisely, never corrupt silently.
//!
//! Every `should_panic` case has a Result-based twin below asserting the
//! exact [`MachineFault`] variant through the `try_*` API, and the seeded
//! corruption campaigns at the bottom drive all eight applications to a
//! recover-or-typed-abort outcome — never a silently wrong checksum.

use memfwd_repro::apps::{run, run_ok, App, RunConfig, Variant};
use memfwd_repro::core::{
    relocate, try_relocate, InjectConfig, Machine, MachineFault, SimConfig, SmpConfig, SmpMachine,
    TrapOutcome,
};
use memfwd_repro::tagmem::Addr;

fn machine() -> Machine {
    Machine::new(SimConfig::default())
}

#[test]
#[should_panic(expected = "forwarding cycle")]
fn load_through_injected_cycle_aborts() {
    let mut m = machine();
    let a = m.malloc(8);
    let b = m.malloc(8);
    let c = m.malloc(8);
    // Software erroneously inserts `a` into its own chain: a -> b -> c -> a.
    m.unforwarded_write(a, b.0, true);
    m.unforwarded_write(b, c.0, true);
    m.unforwarded_write(c, a.0, true);
    let _ = m.load_word(a);
}

#[test]
#[should_panic(expected = "forwarding cycle")]
fn store_through_injected_cycle_aborts() {
    let mut m = machine();
    let a = m.malloc(8);
    m.unforwarded_write(a, a.0, true); // self-loop
    m.store_word(a, 1);
}

#[test]
fn long_but_acyclic_chain_is_not_a_false_positive() {
    // 3x the hop limit: the accurate check must call it a false alarm.
    let mut m = machine();
    let hop_limit = m.config().hop_limit;
    let blocks: Vec<Addr> = (0..3 * hop_limit + 2).map(|_| m.malloc(8)).collect();
    m.store_word(*blocks.last().unwrap(), 99);
    for w in blocks.windows(2) {
        m.unforwarded_write(w[0], w[1].0, true);
    }
    assert_eq!(m.load_word(blocks[0]), 99);
}

#[test]
#[should_panic(expected = "simulated heap exhausted")]
fn heap_exhaustion_panics_cleanly() {
    let cfg = SimConfig {
        heap_capacity: 1024,
        ..SimConfig::default()
    };
    let mut m = Machine::new(cfg);
    for _ in 0..1000 {
        let _ = m.malloc(64);
    }
}

#[test]
#[should_panic(expected = "misaligned")]
fn misaligned_access_is_rejected() {
    let mut m = machine();
    let a = m.malloc(16);
    let _ = m.load(a + 1, 4);
}

#[test]
#[should_panic(expected = "null dereference")]
fn null_chase_is_rejected() {
    let mut m = machine();
    let head = m.malloc(8); // next pointer is 0
    let next = m.load_ptr(head);
    let _ = m.load_word(next);
}

#[test]
#[should_panic(expected = "free of non-allocated address")]
fn free_of_interior_pointer_is_rejected() {
    let mut m = machine();
    let a = m.malloc(32);
    m.free(a + 8);
}

#[test]
#[should_panic(expected = "word-aligned")]
fn misaligned_relocation_is_rejected() {
    let mut m = machine();
    let a = m.malloc(16);
    let b = m.malloc(16);
    relocate(&mut m, a + 4, b, 1);
}

// ---------------------------------------------------------------------------
// Result-based twins: the same failures through the fallible `try_*` API,
// asserting the exact typed fault instead of a panic message.
// ---------------------------------------------------------------------------

#[test]
fn try_load_through_injected_cycle_reports_typed_fault() {
    let mut m = machine();
    let a = m.malloc(8);
    let b = m.malloc(8);
    let c = m.malloc(8);
    m.unforwarded_write(a, b.0, true);
    m.unforwarded_write(b, c.0, true);
    m.unforwarded_write(c, a.0, true);
    match m.try_load_word(a) {
        Err(MachineFault::ForwardingCycle { at, hops }) => {
            assert!(hops > 0);
            assert!([a, b, c].contains(&at), "cycle detected within the loop");
        }
        other => panic!("expected ForwardingCycle, got {other:?}"),
    }
}

#[test]
fn try_store_through_self_loop_reports_typed_fault() {
    let mut m = machine();
    let a = m.malloc(8);
    m.unforwarded_write(a, a.0, true);
    assert!(matches!(
        m.try_store_word(a, 1),
        Err(MachineFault::ForwardingCycle { at, .. }) if at == a
    ));
}

#[test]
fn try_malloc_exhaustion_reports_typed_fault() {
    let cfg = SimConfig {
        heap_capacity: 1024,
        ..SimConfig::default()
    };
    let mut m = Machine::new(cfg);
    let mut last = Ok(Addr(0));
    for _ in 0..1000 {
        last = m.try_malloc(64);
        if last.is_err() {
            break;
        }
    }
    assert_eq!(last, Err(MachineFault::HeapExhausted { requested: 64 }));
}

#[test]
fn try_load_misaligned_reports_typed_fault() {
    let mut m = machine();
    let a = m.malloc(16);
    assert_eq!(
        m.try_load(a + 1, 4),
        Err(MachineFault::Misaligned {
            addr: a + 1,
            size: 4
        })
    );
}

#[test]
fn try_null_chase_reports_typed_fault() {
    let mut m = machine();
    let head = m.malloc(8); // next pointer is 0
    let next = m.load_ptr(head);
    assert_eq!(
        m.try_load_word(next),
        Err(MachineFault::NullDeref { is_store: false })
    );
    assert_eq!(
        m.try_store_word(next, 1),
        Err(MachineFault::NullDeref { is_store: true })
    );
}

#[test]
fn try_free_of_interior_pointer_reports_typed_fault() {
    let mut m = machine();
    let a = m.malloc(32);
    assert_eq!(
        m.try_free(a + 8),
        Err(MachineFault::InvalidFree { addr: a + 8 })
    );
    // The block itself is still live and freeable.
    assert_eq!(m.try_free(a), Ok(()));
}

#[test]
fn try_relocate_misaligned_reports_typed_fault() {
    let mut m = machine();
    let a = m.malloc(16);
    let b = m.malloc(16);
    assert_eq!(
        try_relocate(&mut m, a + 4, b, 1),
        Err(MachineFault::Misaligned {
            addr: a + 4,
            size: 8
        })
    );
}

#[test]
fn free_on_cycle_corrupted_chain_reports_typed_fault() {
    // Regression (wrapper deallocation, paper §3.3): `free` walks the
    // forwarding chain to release every link; a corrupted cyclic chain must
    // surface as a typed cycle fault, not an endless walk or a panic deep
    // in the heap bookkeeping.
    let mut m = machine();
    let a = m.malloc(8);
    let b = m.malloc(8);
    m.unforwarded_write(a, b.0, true);
    m.unforwarded_write(b, a.0, true);
    assert!(matches!(
        m.try_free(a),
        Err(MachineFault::ForwardingCycle { .. })
    ));
    // Nothing was freed: repairing the chain makes both blocks freeable.
    m.unforwarded_write(b, 0, false);
    assert_eq!(m.try_free(a), Ok(()));
}

#[test]
#[should_panic(expected = "forwarding cycle during free")]
fn free_on_cycle_corrupted_chain_panics_in_infallible_api() {
    let mut m = machine();
    let a = m.malloc(8);
    m.unforwarded_write(a, a.0, true);
    m.free(a);
}

#[test]
fn hard_hop_budget_rejects_acyclic_chains_beyond_budget() {
    // Unlike the default accurate check (which forgives long acyclic
    // chains), an explicit hard budget turns excess hops into a typed
    // fault even when no cycle exists.
    let cfg = SimConfig {
        hard_hop_budget: Some(4),
        ..SimConfig::default()
    };
    let mut m = Machine::new(cfg);
    let blocks: Vec<Addr> = (0..8).map(|_| m.malloc(8)).collect();
    m.store_word(*blocks.last().unwrap(), 7);
    for w in blocks.windows(2) {
        m.unforwarded_write(w[0], w[1].0, true);
    }
    // Short chains still resolve…
    assert_eq!(m.try_load_word(blocks[4]), Ok(7));
    // …but the full walk exceeds the budget.
    assert!(matches!(
        m.try_load_word(blocks[0]),
        Err(MachineFault::HopLimitExceeded { hops, .. }) if hops > 4
    ));
}

#[test]
fn fault_exit_codes_are_distinct() {
    let faults = [
        MachineFault::ForwardingCycle {
            at: Addr(8),
            hops: 2,
        },
        MachineFault::HeapExhausted { requested: 1 },
        MachineFault::PoolExhausted { requested: 1 },
        MachineFault::Misaligned {
            addr: Addr(1),
            size: 4,
        },
        MachineFault::NullDeref { is_store: false },
        MachineFault::InvalidFree { addr: Addr(8) },
        MachineFault::HopLimitExceeded {
            at: Addr(8),
            hops: 9,
        },
    ];
    let mut codes: Vec<i32> = faults.iter().map(|f| f.exit_code()).collect();
    codes.sort_unstable();
    codes.dedup();
    assert_eq!(codes.len(), faults.len(), "exit codes must be distinct");
    assert!(
        codes.iter().all(|&c| c >= 10),
        "leave low codes to the harness"
    );
}

// ---------------------------------------------------------------------------
// Recoverable supervisor traps (paper §3.2): a registered handler can
// repair corrupted state with Unforwarded_Write and resume the access.
// ---------------------------------------------------------------------------

#[test]
fn supervisor_trap_repairs_cycle_and_access_resumes() {
    let mut m = machine();
    let a = m.malloc(8);
    let b = m.malloc(8);
    m.unforwarded_write(a, b.0, true);
    m.unforwarded_write(b, a.0, true); // corrupt: a <-> b
    m.set_fault_handler(Box::new(move |m, fault| {
        assert!(matches!(fault, MachineFault::ForwardingCycle { .. }));
        // Repair: make b the terminal again and give it the data.
        m.unforwarded_write(b, 4242, false);
        TrapOutcome::Retry
    }));
    assert_eq!(m.try_load_word(a), Ok(4242));
    let s = m.finish();
    assert_eq!(s.fwd.faults_delivered, 1);
}

#[test]
fn supervisor_trap_abort_propagates_the_fault() {
    let mut m = machine();
    let a = m.malloc(8);
    m.unforwarded_write(a, a.0, true);
    m.set_fault_handler(Box::new(|_, _| TrapOutcome::Abort));
    assert!(matches!(
        m.try_load_word(a),
        Err(MachineFault::ForwardingCycle { .. })
    ));
    let s = m.finish();
    assert_eq!(s.fwd.faults_delivered, 1);
}

#[test]
fn unrepaired_retry_is_bounded_not_endless() {
    let mut m = machine();
    let a = m.malloc(8);
    m.unforwarded_write(a, a.0, true);
    // A handler that claims to have repaired but did nothing: the machine
    // must give up after MAX_FAULT_RETRIES instead of spinning forever.
    m.set_fault_handler(Box::new(|_, _| TrapOutcome::Retry));
    assert!(m.try_load_word(a).is_err());
    let s = m.finish();
    assert_eq!(
        s.fwd.faults_delivered,
        1 + u64::from(memfwd_repro::core::MAX_FAULT_RETRIES)
    );
}

#[test]
fn unforwarded_write_can_repair_a_cycle() {
    // The §3.2 story: after the cycle check aborts (here: would panic), a
    // supervisor can repair the chain with Unforwarded_Write and resume.
    let mut m = machine();
    let a = m.malloc(8);
    let b = m.malloc(8);
    m.unforwarded_write(a, b.0, true);
    m.unforwarded_write(b, a.0, true); // corrupt: a <-> b
                                       // Repair: make b the terminal again and give it the data.
    m.unforwarded_write(b, 4242, false);
    assert_eq!(m.load_word(a), 4242);
}

// ---------------------------------------------------------------------------
// Seeded corruption campaigns: all eight applications, multiple seeds.
// Every run must end in recover-or-typed-abort — an `Ok` with a checksum
// different from the clean run would be silent divergence, the one outcome
// the fault model exists to rule out.
// ---------------------------------------------------------------------------

/// Fault-injection seeds for the campaigns (3 per the acceptance bar).
const CAMPAIGN_SEEDS: [u64; 3] = [0x5eed_f417, 2, 0xdead_beef];

fn smoke_cfg() -> RunConfig {
    RunConfig::new(Variant::Optimized).smoke()
}

fn clean_checksum(app: App) -> u64 {
    run_ok(app, &smoke_cfg()).checksum
}

#[test]
fn recovery_campaign_all_apps_complete_with_golden_checksums() {
    // End-to-end §3.2 recovery: corruption is injected mid-run and repaired
    // by the supervisor trap (fbit flips, chain scrambles and transient
    // allocation failures); every application must still complete with a
    // checksum identical to its clean run.
    for app in App::ALL {
        let clean = clean_checksum(app);
        for seed in CAMPAIGN_SEEDS {
            let mut cfg = smoke_cfg();
            cfg.sim = cfg.sim.with_fault_injection(InjectConfig {
                seed,
                fbit_flip_ppm: 2_000,
                chain_scramble_ppm: 2_000,
                alloc_fail_ppm: 2_000,
                recover: true,
                max_injections: 0,
            });
            let out = run(app, &cfg)
                .unwrap_or_else(|fault| panic!("{app} seed {seed:#x}: recovery failed: {fault}"));
            assert_eq!(
                out.checksum, clean,
                "{app} seed {seed:#x}: recovered run diverged from the clean run"
            );
            assert!(
                out.stats.fwd.injected_faults > 0,
                "{app} seed {seed:#x}: campaign injected nothing — vacuous"
            );
            assert_eq!(
                out.stats.fwd.fault_repairs, out.stats.fwd.injected_faults,
                "{app} seed {seed:#x}: every injected corruption must be repaired"
            );
        }
    }
}

#[test]
fn abort_campaign_all_apps_recover_or_abort_typed_never_diverge() {
    // Without recovery, injected chain scrambles are left in place. The
    // scrambled word is a forwarding self-loop, so the very access that
    // would read corrupt data trips the accurate cycle check instead: the
    // only possible outcomes are a clean finish (injection never hit) with
    // the golden checksum, or a typed abort. Silent divergence is impossible.
    let mut aborts = 0u32;
    for app in App::ALL {
        let clean = clean_checksum(app);
        for seed in CAMPAIGN_SEEDS {
            let mut cfg = smoke_cfg();
            cfg.sim = cfg.sim.with_fault_injection(InjectConfig {
                seed,
                chain_scramble_ppm: 2_000,
                recover: false,
                ..InjectConfig::default()
            });
            match run(app, &cfg) {
                Ok(out) => assert_eq!(
                    out.checksum, clean,
                    "{app} seed {seed:#x}: SILENT DIVERGENCE — completed with a wrong checksum"
                ),
                Err(fault) => {
                    assert!(
                        matches!(
                            fault,
                            MachineFault::ForwardingCycle { .. }
                                | MachineFault::HopLimitExceeded { .. }
                        ),
                        "{app} seed {seed:#x}: unexpected fault {fault:?}"
                    );
                    aborts += 1;
                }
            }
        }
    }
    assert!(
        aborts > 0,
        "campaign never aborted — injection rate too low to test anything"
    );
}

// ---------------------------------------------------------------------------
// SMP campaign: the same adversary racing against all cores' accesses to
// coherent shared memory (the §2.2 false-sharing model). Forwarding is on
// the hot path — every counter access dereferences a stale pre-relocation
// address — so injected corruption lands exactly where it hurts.
// ---------------------------------------------------------------------------

/// A false-sharing workload on the stale (forwarded) addresses: packed
/// per-core counters are relocated to private lines up front, then every
/// core increments its counter through the old packed address.
fn smp_forwarded_counters(sim: SimConfig) -> Result<(u64, u64, u64), MachineFault> {
    let mut smp = SmpMachine::new(SmpConfig::default(), sim);
    let cores = smp.cores();
    let line = smp.line_bytes();
    let packed = smp.malloc(cores as u64 * 8);
    let spread = smp.malloc(cores as u64 * line);
    for c in 0..cores as u64 {
        smp.relocate(0, packed.add_words(c), spread + c * line, 1);
    }
    for round in 0..500u64 {
        for c in 0..cores {
            let a = packed.add_words(c as u64);
            let v = smp.try_load(c, a, 8)?;
            smp.try_store(c, a, 8, v.wrapping_add(round + c as u64))?;
        }
        smp.barrier();
    }
    let mut checksum = 0u64;
    for c in 0..cores as u64 {
        checksum =
            checksum
                .wrapping_mul(31)
                .wrapping_add(smp.try_load(0, packed.add_words(c), 8)?);
    }
    Ok((checksum, smp.injected_faults(), smp.fault_repairs()))
}

#[test]
fn smp_recovery_campaign_matches_clean_run() {
    let (clean, injected, _) = smp_forwarded_counters(SimConfig::default()).expect("clean run");
    assert_eq!(injected, 0);
    for seed in CAMPAIGN_SEEDS {
        let sim = SimConfig::default().with_fault_injection(InjectConfig {
            seed,
            fbit_flip_ppm: 2_000,
            chain_scramble_ppm: 2_000,
            recover: true,
            ..InjectConfig::default()
        });
        let (checksum, injected, repairs) = smp_forwarded_counters(sim)
            .unwrap_or_else(|fault| panic!("seed {seed:#x}: SMP recovery failed: {fault}"));
        assert_eq!(
            checksum, clean,
            "seed {seed:#x}: recovered SMP run diverged from the clean run"
        );
        assert!(
            injected > 0,
            "seed {seed:#x}: SMP campaign injected nothing — vacuous"
        );
        assert_eq!(
            repairs, injected,
            "seed {seed:#x}: every injected corruption must be repaired"
        );
    }
}

#[test]
fn smp_abort_campaign_recover_or_abort_typed_never_diverge() {
    let (clean, _, _) = smp_forwarded_counters(SimConfig::default()).expect("clean run");
    let mut aborts = 0u32;
    for seed in CAMPAIGN_SEEDS {
        let sim = SimConfig::default().with_fault_injection(InjectConfig {
            seed,
            chain_scramble_ppm: 2_000,
            recover: false,
            ..InjectConfig::default()
        });
        match smp_forwarded_counters(sim) {
            Ok((checksum, _, _)) => assert_eq!(
                checksum, clean,
                "seed {seed:#x}: SILENT SMP DIVERGENCE — wrong checksum"
            ),
            Err(fault) => {
                assert!(
                    matches!(
                        fault,
                        MachineFault::ForwardingCycle { .. }
                            | MachineFault::HopLimitExceeded { .. }
                    ),
                    "seed {seed:#x}: unexpected SMP fault {fault:?}"
                );
                aborts += 1;
            }
        }
    }
    assert!(
        aborts > 0,
        "SMP campaign never aborted — injection rate too low to test anything"
    );
}

#[test]
fn injection_campaigns_are_deterministic() {
    // Same workload seed + same injection seed => bit-identical outcome,
    // including the abort fault itself. This is what makes a campaign a
    // reproducible bug report rather than a flake.
    let mut cfg = smoke_cfg();
    cfg.sim = cfg.sim.with_fault_injection(InjectConfig {
        seed: 77,
        chain_scramble_ppm: 2_000,
        recover: false,
        ..InjectConfig::default()
    });
    let a = run(App::Smv, &cfg);
    let b = run(App::Smv, &cfg);
    match (a, b) {
        (Ok(x), Ok(y)) => assert_eq!(x.checksum, y.checksum),
        (Err(x), Err(y)) => assert_eq!(x, y),
        (x, y) => panic!("outcomes diverged across identical replays: {x:?} vs {y:?}"),
    }
}
