//! Failure injection: corrupted forwarding state, resource exhaustion and
//! API misuse must fail loudly and precisely, never corrupt silently.

use memfwd_repro::core::{relocate, Machine, SimConfig};
use memfwd_repro::tagmem::Addr;

fn machine() -> Machine {
    Machine::new(SimConfig::default())
}

#[test]
#[should_panic(expected = "forwarding cycle")]
fn load_through_injected_cycle_aborts() {
    let mut m = machine();
    let a = m.malloc(8);
    let b = m.malloc(8);
    let c = m.malloc(8);
    // Software erroneously inserts `a` into its own chain: a -> b -> c -> a.
    m.unforwarded_write(a, b.0, true);
    m.unforwarded_write(b, c.0, true);
    m.unforwarded_write(c, a.0, true);
    let _ = m.load_word(a);
}

#[test]
#[should_panic(expected = "forwarding cycle")]
fn store_through_injected_cycle_aborts() {
    let mut m = machine();
    let a = m.malloc(8);
    m.unforwarded_write(a, a.0, true); // self-loop
    m.store_word(a, 1);
}

#[test]
fn long_but_acyclic_chain_is_not_a_false_positive() {
    // 3x the hop limit: the accurate check must call it a false alarm.
    let mut m = machine();
    let hop_limit = m.config().hop_limit;
    let blocks: Vec<Addr> = (0..3 * hop_limit + 2).map(|_| m.malloc(8)).collect();
    m.store_word(*blocks.last().unwrap(), 99);
    for w in blocks.windows(2) {
        m.unforwarded_write(w[0], w[1].0, true);
    }
    assert_eq!(m.load_word(blocks[0]), 99);
}

#[test]
#[should_panic(expected = "simulated heap exhausted")]
fn heap_exhaustion_panics_cleanly() {
    let cfg = SimConfig {
        heap_capacity: 1024,
        ..SimConfig::default()
    };
    let mut m = Machine::new(cfg);
    for _ in 0..1000 {
        let _ = m.malloc(64);
    }
}

#[test]
#[should_panic(expected = "misaligned")]
fn misaligned_access_is_rejected() {
    let mut m = machine();
    let a = m.malloc(16);
    let _ = m.load(a + 1, 4);
}

#[test]
#[should_panic(expected = "null dereference")]
fn null_chase_is_rejected() {
    let mut m = machine();
    let head = m.malloc(8); // next pointer is 0
    let next = m.load_ptr(head);
    let _ = m.load_word(next);
}

#[test]
#[should_panic(expected = "free of non-allocated address")]
fn free_of_interior_pointer_is_rejected() {
    let mut m = machine();
    let a = m.malloc(32);
    m.free(a + 8);
}

#[test]
#[should_panic(expected = "word-aligned")]
fn misaligned_relocation_is_rejected() {
    let mut m = machine();
    let a = m.malloc(16);
    let b = m.malloc(16);
    relocate(&mut m, a + 4, b, 1);
}

#[test]
fn unforwarded_write_can_repair_a_cycle() {
    // The §3.2 story: after the cycle check aborts (here: would panic), a
    // supervisor can repair the chain with Unforwarded_Write and resume.
    let mut m = machine();
    let a = m.malloc(8);
    let b = m.malloc(8);
    m.unforwarded_write(a, b.0, true);
    m.unforwarded_write(b, a.0, true); // corrupt: a <-> b
    // Repair: make b the terminal again and give it the data.
    m.unforwarded_write(b, 4242, false);
    assert_eq!(m.load_word(a), 4242);
}
