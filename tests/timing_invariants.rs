//! Invariants of the timing model that must hold for the paper's
//! comparisons to be meaningful.

use memfwd_repro::apps::{run_ok as run, App, RunConfig, Variant};
use memfwd_repro::core::{Machine, SimConfig, Token};

#[test]
fn slot_accounting_is_conserved_for_every_app() {
    for app in App::ALL {
        for variant in [Variant::Original, Variant::Optimized] {
            let out = run(app, &RunConfig::new(variant).smoke());
            let s = out.stats.slots();
            assert_eq!(
                s.total(),
                out.stats.cycles() * 4,
                "{app} {variant:?}: slots must equal cycles x width"
            );
            assert_eq!(
                s.busy, out.stats.pipeline.dispatched,
                "{app} {variant:?}: every dispatched instruction graduates once"
            );
        }
    }
}

#[test]
fn perfect_forwarding_never_slower_than_real_forwarding() {
    // Same program, same relocations: removing hop latency and pollution
    // can only help.
    for app in [App::Smv, App::Health, App::Vis] {
        let real = run(app, &RunConfig::new(Variant::Optimized).smoke());
        let mut cfg = RunConfig::new(Variant::Optimized).smoke();
        cfg.sim = cfg.sim.with_perfect_forwarding();
        let perf = run(app, &cfg);
        assert!(
            perf.stats.cycles() <= real.stats.cycles(),
            "{app}: Perf {} > real {}",
            perf.stats.cycles(),
            real.stats.cycles()
        );
    }
}

#[test]
fn conservative_loads_never_faster_than_speculation() {
    for app in [App::Smv, App::Mst] {
        let spec = run(app, &RunConfig::new(Variant::Optimized).smoke());
        let mut cfg = RunConfig::new(Variant::Optimized).smoke();
        cfg.sim.dependence_speculation = false;
        let cons = run(app, &cfg);
        assert!(
            cons.stats.cycles() >= spec.stats.cycles(),
            "{app}: conservative {} < speculative {}",
            cons.stats.cycles(),
            spec.stats.cycles()
        );
    }
}

#[test]
fn longer_memory_latency_slows_execution() {
    let mut fast_cfg = RunConfig::new(Variant::Original).smoke();
    fast_cfg.sim.hierarchy.mem_latency = 20;
    let mut slow_cfg = RunConfig::new(Variant::Original).smoke();
    slow_cfg.sim.hierarchy.mem_latency = 300;
    let fast = run(App::Vis, &fast_cfg);
    let slow = run(App::Vis, &slow_cfg);
    assert_eq!(
        fast.checksum, slow.checksum,
        "latency must not change results"
    );
    assert!(slow.stats.cycles() > fast.stats.cycles());
}

#[test]
fn bigger_cache_never_hurts_misses() {
    let small = RunConfig::new(Variant::Original).smoke();
    let mut big = RunConfig::new(Variant::Original).smoke();
    big.sim.hierarchy.l1.size_bytes *= 8;
    let s = run(App::Eqntott, &small);
    let b = run(App::Eqntott, &big);
    assert!(
        b.stats.cache.loads.misses() <= s.stats.cache.loads.misses(),
        "8x L1: {} misses vs {}",
        b.stats.cache.loads.misses(),
        s.stats.cache.loads.misses()
    );
}

#[test]
fn ideal_compute_ipc_reaches_machine_width() {
    let mut m = Machine::new(SimConfig::default());
    m.compute(40_000);
    let s = m.finish();
    let ipc = s.pipeline.dispatched as f64 / s.cycles() as f64;
    assert!(
        ipc > 3.9,
        "independent ALU stream should reach ~4 IPC, got {ipc:.2}"
    );
}

#[test]
fn dependent_chain_is_latency_bound() {
    let mut m = Machine::new(SimConfig::default());
    let mut t = Token::ready();
    for _ in 0..10_000 {
        t = m.compute_dep(1, t);
    }
    let s = m.finish();
    assert!(
        s.cycles() >= 10_000,
        "a dependent chain cannot beat 1 op/cycle: {}",
        s.cycles()
    );
}

#[test]
fn instruction_counts_are_layout_independent_modulo_optimization() {
    // The original variant executes the same instruction stream regardless
    // of machine parameters.
    let a = run(App::Compress, &RunConfig::new(Variant::Original).smoke());
    let mut cfg = RunConfig::new(Variant::Original).smoke();
    cfg.sim = cfg.sim.with_line_bytes(128);
    cfg.sim.hierarchy.mem_latency = 200;
    let b = run(App::Compress, &cfg);
    assert_eq!(a.stats.pipeline.dispatched, b.stats.pipeline.dispatched);
}

#[test]
fn bandwidth_grows_with_line_size_in_sparse_apps() {
    let mut narrow = RunConfig::new(Variant::Original).smoke();
    narrow.sim = narrow.sim.with_line_bytes(32);
    let mut wide = RunConfig::new(Variant::Original).smoke();
    wide.sim = wide.sim.with_line_bytes(128);
    let n = run(App::Vis, &narrow);
    let w = run(App::Vis, &wide);
    assert!(
        w.stats.bytes_l2_mem > n.stats.bytes_l2_mem,
        "sparse lists waste bandwidth on long lines: {} vs {}",
        w.stats.bytes_l2_mem,
        n.stats.bytes_l2_mem
    );
}
