//! Property-based tests (proptest) of the core invariants: relocation
//! safety against a functional model, heap soundness, chain resolution,
//! linearization, and statistics conservation.

use memfwd_repro::core::{
    list_linearize, relocate, restore_machine, save_machine, ListDesc, Machine, SimConfig,
};
use memfwd_repro::tagmem::{resolve_unbounded, Addr, Heap, TaggedMemory};
use proptest::prelude::*;
use std::collections::HashMap;

/// Operations for the relocation-equivalence property.
#[derive(Debug, Clone)]
enum Op {
    /// Store `value` of `size` bytes at logical offset `off` of object
    /// `obj`, through its `gen`-th historical address.
    Store {
        obj: u8,
        gen: u8,
        off: u8,
        size: u8,
        value: u64,
    },
    /// Load at logical offset `off` of `obj` through a historical address.
    Load { obj: u8, gen: u8, off: u8, size: u8 },
    /// Relocate `obj` to a fresh home through a historical address.
    Relocate { obj: u8, gen: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let size = prop_oneof![Just(1u8), Just(2), Just(4), Just(8)];
    prop_oneof![
        (0u8..4, 0u8..8, 0u8..24, size.clone(), any::<u64>()).prop_map(
            |(obj, gen, off, size, value)| Op::Store {
                obj,
                gen,
                off,
                size,
                value
            }
        ),
        (0u8..4, 0u8..8, 0u8..24, size).prop_map(|(obj, gen, off, size)| Op::Load {
            obj,
            gen,
            off,
            size
        }),
        (0u8..4, 0u8..8).prop_map(|(obj, gen)| Op::Relocate { obj, gen }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of stores, loads and relocations — through ANY
    /// historical address of an object — behaves exactly like a flat,
    /// never-relocated memory.
    #[test]
    fn relocation_is_transparent(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        const OBJ_WORDS: u64 = 3; // 24 bytes
        let mut m = Machine::new(SimConfig::default());
        // model[obj][byte offset] = value of that byte
        let mut model: Vec<HashMap<u8, u8>> = vec![HashMap::new(); 4];
        let mut homes: Vec<Vec<Addr>> = (0..4)
            .map(|_| vec![m.malloc(OBJ_WORDS * 8)])
            .collect();

        for op in ops {
            match op {
                Op::Store { obj, gen, off, size, value } => {
                    let o = obj as usize % 4;
                    let addr = homes[o][gen as usize % homes[o].len()];
                    let size = u64::from(size);
                    let off = (u64::from(off) / size * size) % (OBJ_WORDS * 8);
                    m.store(addr + off, size, value);
                    for b in 0..size {
                        model[o].insert((off + b) as u8, value.to_le_bytes()[b as usize]);
                    }
                }
                Op::Load { obj, gen, off, size } => {
                    let o = obj as usize % 4;
                    let addr = homes[o][gen as usize % homes[o].len()];
                    let size = u64::from(size);
                    let off = (u64::from(off) / size * size) % (OBJ_WORDS * 8);
                    let got = m.load(addr + off, size);
                    let mut want = [0u8; 8];
                    for b in 0..size {
                        want[b as usize] =
                            model[o].get(&((off + b) as u8)).copied().unwrap_or(0);
                    }
                    prop_assert_eq!(got, u64::from_le_bytes(want));
                }
                Op::Relocate { obj, gen } => {
                    let o = obj as usize % 4;
                    let src = homes[o][gen as usize % homes[o].len()];
                    let tgt = m.malloc(OBJ_WORDS * 8);
                    relocate(&mut m, src, tgt, OBJ_WORDS);
                    homes[o].push(tgt);
                }
            }
        }
    }

    /// The heap never hands out overlapping blocks, keeps everything
    /// word-aligned, and its byte accounting is exact.
    #[test]
    fn heap_soundness(ops in proptest::collection::vec((any::<bool>(), 1u64..200), 1..200)) {
        let mut h = Heap::new(Addr(0x1000), 1 << 22);
        let mut live: Vec<(Addr, u64)> = Vec::new();
        for (free, size) in ops {
            if free && !live.is_empty() {
                let (a, _) = live.swap_remove(size as usize % live.len());
                h.free(a).unwrap();
            } else {
                let a = h.alloc(size).unwrap();
                prop_assert!(a.is_aligned(8));
                let rounded = size.div_ceil(8) * 8;
                for &(b, bsz) in &live {
                    let disjoint = a.0 + rounded <= b.0 || b.0 + bsz <= a.0;
                    prop_assert!(disjoint, "{a:?}+{rounded} overlaps {b:?}+{bsz}");
                }
                live.push((a, rounded));
            }
        }
        let want: u64 = live.iter().map(|&(_, s)| s).sum();
        prop_assert_eq!(h.stats().live_bytes, want);
    }

    /// Chain resolution always lands on the terminal word of the chain the
    /// relocations built, with the hop count equal to the chain length.
    #[test]
    fn chain_resolution_matches_construction(hops in 0usize..12, offset in 0u64..8) {
        let mut mem = TaggedMemory::new();
        let homes: Vec<u64> = (0..=hops as u64).map(|i| 0x1000 + i * 0x100).collect();
        for w in homes.windows(2) {
            mem.unforwarded_write(Addr(w[0]), w[1], true);
        }
        let r = resolve_unbounded(&mem, Addr(homes[0] + offset)).unwrap();
        prop_assert_eq!(r.final_addr, Addr(homes[hops] + offset));
        prop_assert_eq!(r.hops, hops as u32);
    }

    /// Linearization preserves arbitrary list contents and produces
    /// contiguous nodes, no matter the payloads or length.
    #[test]
    fn linearization_preserves_lists(payloads in proptest::collection::vec(any::<u64>(), 0..60)) {
        const DESC: ListDesc = ListDesc { node_words: 3, next_word: 0 };
        let mut m = Machine::new(SimConfig::default());
        let head = m.malloc(8);
        m.store_ptr(head, Addr::NULL);
        for (i, &v) in payloads.iter().enumerate().rev() {
            let _pad = m.malloc(8 * (i as u64 % 5 + 1));
            let node = m.malloc(24);
            let first = m.load_ptr(head);
            m.store_ptr(node, first);
            m.store_word(node + 8, v);
            m.store_ptr(head, node);
        }
        let mut pool = m.new_pool();
        let out = list_linearize(&mut m, head, DESC, &mut pool);
        prop_assert_eq!(out.nodes, payloads.len() as u64);
        // Walk and compare payloads + contiguity.
        let mut node = m.load_ptr(head);
        let mut prev = Addr::NULL;
        for &want in &payloads {
            prop_assert!(!node.is_null());
            prop_assert_eq!(m.load_word(node + 8), want);
            if !prev.is_null() {
                prop_assert_eq!(node.0 - prev.0, 24);
            }
            prev = node;
            node = m.load_ptr(node);
        }
        prop_assert!(node.is_null());
    }

    /// Access classification is conserved: every load is exactly one of
    /// {L1 hit, partial miss, full miss}, and the same for stores.
    #[test]
    fn cache_stats_conserved(addrs in proptest::collection::vec((any::<u16>(), any::<bool>()), 1..300)) {
        let mut m = Machine::new(SimConfig::default());
        let base = m.malloc(1 << 20);
        let mut loads = 0u64;
        let mut stores = 0u64;
        for (a, is_store) in addrs {
            let addr = base + (u64::from(a) * 8) % (1 << 20);
            if is_store {
                m.store_word(addr, 1);
                stores += 1;
            } else {
                m.load_word(addr);
                loads += 1;
            }
        }
        let s = m.finish();
        prop_assert_eq!(s.cache.loads.total(), loads);
        prop_assert_eq!(s.cache.stores.total(), stores);
        prop_assert_eq!(s.fwd.loads, loads);
        prop_assert_eq!(s.fwd.stores, stores);
    }

    /// Randomly flipping forwarding bits over words holding arbitrary data
    /// can never cause a *silent* wrong value: every load either returns
    /// the functionally correct value, is visibly forwarded (a user-level
    /// trap fires, paper §3.2), or raises a typed machine fault.
    #[test]
    fn random_fbit_corruption_is_never_silent(
        values in proptest::collection::vec(any::<u64>(), 4..24),
        flips in proptest::collection::vec(any::<bool>(), 24..25),
    ) {
        let mut m = Machine::new(SimConfig::default());
        m.set_traps_enabled(true);
        let words: Vec<Addr> = values
            .iter()
            .map(|&v| {
                let a = m.malloc(8);
                m.store_word(a, v);
                a
            })
            .collect();
        // Corrupt: set the forwarding bit on a random subset, turning each
        // word's payload into a bogus forwarding address.
        for (i, &a) in words.iter().enumerate() {
            if flips[i] {
                let (v, _) = m.unforwarded_read(a);
                m.unforwarded_write(a, v, true);
            }
        }
        for (i, &a) in words.iter().enumerate() {
            let _ = m.take_traps();
            match m.try_load_word(a) {
                Ok(got) => {
                    if got != values[i] {
                        // A wrong value is only acceptable if the hardware
                        // made the forwarding visible: the access trapped.
                        let traps = m.take_traps();
                        prop_assert!(
                            !traps.is_empty() && traps.iter().all(|t| t.hops > 0),
                            "SILENT corruption: word {i} returned {got:#x}, want {:#x}, no trap",
                            values[i]
                        );
                    }
                }
                Err(fault) => prop_assert!(
                    matches!(
                        fault,
                        memfwd_repro::core::MachineFault::ForwardingCycle { .. }
                            | memfwd_repro::core::MachineFault::NullDeref { .. }
                            | memfwd_repro::core::MachineFault::Misaligned { .. }
                            | memfwd_repro::core::MachineFault::HopLimitExceeded { .. }
                    ),
                    "unexpected fault kind for fbit corruption: {fault:?}"
                ),
            }
        }
    }

    /// Snapshots round-trip losslessly: `restore` of a machine's own image
    /// returns the exact host cursor, re-saving is byte-identical, and the
    /// restored machine answers every access — including through stale
    /// pre-relocation addresses — exactly like the original.
    #[test]
    fn snapshot_round_trip_is_lossless(
        ops in proptest::collection::vec((any::<u8>(), any::<u64>()), 0..80),
        cursor in proptest::collection::vec(any::<u64>(), 0..32),
    ) {
        let mut m = Machine::new(SimConfig::default());
        let objs: Vec<Addr> = (0..4).map(|_| m.malloc(32)).collect();
        let mut homes = objs.clone();
        for (sel, val) in ops {
            let o = sel as usize % 4;
            match sel % 3 {
                0 => m.store_word(homes[o] + (val % 4) * 8, val),
                1 => { let _ = m.load_word(objs[o] + (val % 4) * 8); }
                _ => {
                    let t = m.malloc(32);
                    relocate(&mut m, homes[o], t, 4);
                    homes[o] = t;
                }
            }
        }
        let img = save_machine(&m, &cursor);
        let (mut r, rcursor) =
            restore_machine(&img, SimConfig::default()).expect("own image restores");
        prop_assert_eq!(&rcursor, &cursor);
        prop_assert_eq!(save_machine(&r, &rcursor), img.clone());
        for (o, &stale) in objs.iter().enumerate() {
            for w in 0..4u64 {
                prop_assert_eq!(
                    r.load_word(stale + w * 8),
                    m.load_word(stale + w * 8),
                    "object {} word {} diverged after restore", o, w
                );
            }
        }
        // The replayed loads above perturbed both machines identically:
        // their images must still agree.
        prop_assert_eq!(save_machine(&r, &rcursor), save_machine(&m, &cursor));
    }

    /// Any truncation and any single bit flip of a valid snapshot image is
    /// rejected with a typed error — decoding is total and never panics,
    /// and no corruption slips through the container checks.
    #[test]
    fn snapshot_corruption_is_always_typed(
        cursor in proptest::collection::vec(any::<u64>(), 0..8),
        cut in any::<u64>(),
        flip_byte in any::<u64>(),
        flip_bit in 0u32..8,
    ) {
        let mut m = Machine::new(SimConfig::default());
        let a = m.malloc(16);
        m.store_word(a, 7);
        let img = save_machine(&m, &cursor);
        let cut = (cut as usize) % img.len();
        prop_assert!(restore_machine(&img[..cut], SimConfig::default()).is_err());
        let mut torn = img.clone();
        let i = (flip_byte as usize) % torn.len();
        torn[i] ^= 1 << flip_bit;
        prop_assert!(restore_machine(&torn, SimConfig::default()).is_err());
    }

    /// Perfect forwarding and real forwarding always agree functionally.
    #[test]
    fn perfect_forwarding_functional_equivalence(
        seeds in proptest::collection::vec(any::<u64>(), 1..6)
    ) {
        for seed in seeds {
            let scramble = |perfect: bool| -> u64 {
                let cfg = SimConfig {
                    perfect_forwarding: perfect,
                    ..SimConfig::default()
                };
                let mut m = Machine::new(cfg);
                let mut x = seed | 1;
                let objs: Vec<Addr> = (0..8).map(|_| m.malloc(16)).collect();
                let mut sum = 0u64;
                for i in 0..64u64 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let o = objs[(x >> 33) as usize % 8];
                    match x % 3 {
                        0 => m.store_word(o + 8, x),
                        1 => sum = sum.wrapping_add(m.load_word(o + 8)),
                        _ => {
                            let t = m.malloc(16);
                            relocate(&mut m, o, t, 2);
                        }
                    }
                    let _ = i;
                }
                sum
            };
            prop_assert_eq!(scramble(false), scramble(true));
        }
    }
}
