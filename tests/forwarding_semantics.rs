//! Cross-crate integration tests of the forwarding mechanism itself:
//! chains, sub-word accesses, pointer comparison, deallocation wrappers
//! and traps, all through the public `Machine` API.

use memfwd_repro::core::{
    color_relocate, copy_region, final_address, list_linearize, merge_tables, ptr_eq, relocate,
    ListDesc, Machine, SimConfig,
};
use memfwd_repro::tagmem::Addr;

fn machine() -> Machine {
    Machine::new(SimConfig::default())
}

#[test]
fn every_subword_size_survives_relocation() {
    let mut m = machine();
    let old = m.malloc(16);
    m.store(old, 1, 0x11);
    m.store(old + 1, 1, 0x22);
    m.store(old + 2, 2, 0x3344);
    m.store(old + 4, 4, 0x5566_7788);
    m.store(old + 8, 8, 0x99AA_BBCC_DDEE_FF00);
    let new = m.malloc(16);
    relocate(&mut m, old, new, 2);
    // Reads through the OLD addresses, all sizes:
    assert_eq!(m.load(old, 1), 0x11);
    assert_eq!(m.load(old + 1, 1), 0x22);
    assert_eq!(m.load(old + 2, 2), 0x3344);
    assert_eq!(m.load(old + 4, 4), 0x5566_7788);
    assert_eq!(m.load(old + 8, 8), 0x99AA_BBCC_DDEE_FF00);
    // Writes through the OLD addresses land in the new home:
    m.store(old + 2, 2, 0xBEEF);
    assert_eq!(m.load(new + 2, 2), 0xBEEF);
}

#[test]
fn chains_grow_at_the_end_and_stay_consistent() {
    let mut m = machine();
    let a = m.malloc(8);
    m.store_word(a, 111);
    let mut homes = vec![a];
    for _ in 0..5 {
        let next = m.malloc(8);
        relocate(&mut m, a, next, 1); // always relocate via the OLDEST name
        homes.push(next);
    }
    // Every historical name of the object still reads the live value.
    for h in &homes {
        assert_eq!(m.load_word(*h), 111);
    }
    // And a store through the middle of the chain updates the terminal.
    m.store_word(homes[2], 222);
    assert_eq!(m.load_word(*homes.last().unwrap()), 222);
    assert_eq!(m.load_word(homes[0]), 222);
}

#[test]
fn pointer_comparison_across_relocation_generations() {
    let mut m = machine();
    let a = m.malloc(8);
    let b = m.malloc(8);
    relocate(&mut m, a, b, 1);
    let c = m.malloc(8);
    relocate(&mut m, a, c, 1); // extends the chain: a -> b -> c
    assert!(ptr_eq(&mut m, a, b));
    assert!(ptr_eq(&mut m, b, c));
    assert!(ptr_eq(&mut m, a, c));
    assert_eq!(final_address(&mut m, a), c);
    let other = m.malloc(8);
    assert!(!ptr_eq(&mut m, a, other));
}

#[test]
fn merge_tables_stale_access_and_update() {
    let mut m = machine();
    let a = m.malloc(8 * 8);
    let b = m.malloc(8 * 8);
    for i in 0..8 {
        m.store_word(a.add_words(i), i);
        m.store_word(b.add_words(i), 100 + i);
    }
    let mut pool = m.new_pool();
    let t = merge_tables(&mut m, a, b, 8, &mut pool);
    // Stale writes through the old tables must land in the merged table.
    m.store_word(a.add_words(5), 555);
    m.store_word(b.add_words(6), 666);
    assert_eq!(m.load_word(t.a_entry(5)), 555);
    assert_eq!(m.load_word(t.b_entry(6)), 666);
}

#[test]
fn copy_region_and_coloring_compose() {
    let mut m = machine();
    let src = m.malloc(32);
    for i in 0..4 {
        m.store_word(src.add_words(i), i + 1);
    }
    let mut pool = m.new_pool();
    let copy1 = copy_region(&mut m, src, 4, &mut pool);
    // Color-relocate the copy (another generation of relocation).
    let mut pools = vec![m.new_pool(), m.new_pool()];
    let moved = color_relocate(&mut m, &[(copy1, 4, 1)], &mut pools);
    for i in 0..4 {
        assert_eq!(m.load_word(moved[0].add_words(i)), i + 1);
        assert_eq!(m.load_word(src.add_words(i)), i + 1, "two hops");
    }
}

#[test]
fn free_reclaims_whole_chain_of_blocks() {
    let mut m = machine();
    let a = m.malloc(24);
    let b = m.malloc(24);
    let c = m.malloc(24);
    relocate(&mut m, a, b, 3);
    relocate(&mut m, a, c, 3);
    let live_before = m.heap().stats().live_bytes;
    m.free(a);
    let s = m.heap().stats();
    assert_eq!(live_before - s.live_bytes, 72, "a, b and c all freed");
    let rs = m.finish();
    assert_eq!(rs.fwd.chain_frees, 2);
}

#[test]
fn freed_chain_memory_is_safe_to_reuse() {
    let mut m = machine();
    let a = m.malloc(16);
    let b = m.malloc(16);
    relocate(&mut m, a, b, 2);
    m.free(a);
    // Anything reallocated over the old storage must behave like fresh
    // memory: no stale forwarding bits.
    for _ in 0..8 {
        let x = m.malloc(16);
        m.store_word(x, 0xDEAD);
        assert_eq!(m.load_word(x), 0xDEAD);
        assert!(!m.mem().fbit(x), "recycled memory must have clear fbits");
    }
}

#[test]
fn linearization_of_a_list_with_external_aliases() {
    const DESC: ListDesc = ListDesc {
        node_words: 3,
        next_word: 0,
    };
    let mut m = machine();
    let head = m.malloc(8);
    m.store_ptr(head, Addr::NULL);
    let mut aliases = Vec::new();
    for i in 0..40u64 {
        let node = m.malloc(24);
        let first = m.load_ptr(head);
        m.store_ptr(node, first);
        m.store_word(node + 8, i);
        m.store_ptr(head, node);
        if i % 7 == 0 {
            aliases.push((node, i));
        }
    }
    let mut pool = m.new_pool();
    // Linearize TWICE; aliases get two hops but stay correct.
    list_linearize(&mut m, head, DESC, &mut pool);
    list_linearize(&mut m, head, DESC, &mut pool);
    for (alias, want) in aliases {
        assert_eq!(m.load_word(alias + 8), want);
    }
    let s = m.finish();
    assert!(s.fwd.load_hops[2] > 0, "two-hop dereferences exercised");
}

#[test]
fn traps_report_every_forwarded_reference_once() {
    let mut m = machine();
    let old = m.malloc(8);
    let new = m.malloc(8);
    m.store_word(old, 1);
    relocate(&mut m, old, new, 1);
    m.set_traps_enabled(true);
    for _ in 0..5 {
        m.load_word(old);
    }
    m.load_word(new); // direct: no trap
    let traps = m.take_traps();
    assert_eq!(traps.len(), 5);
    assert!(traps
        .iter()
        .all(|t| t.initial == old && t.final_addr == new));
    assert!(traps.iter().all(|t| t.hops == 1 && !t.is_store));
    assert_eq!(traps[0].displacement(), new.distance_from(old));
}

#[test]
fn isa_extensions_observe_raw_state() {
    let mut m = machine();
    let old = m.malloc(8);
    let new = m.malloc(8);
    m.store_word(old, 42);
    relocate(&mut m, old, new, 1);
    // Read_FBit and Unforwarded_Read see the forwarding plumbing itself.
    assert!(m.read_fbit(old));
    assert!(!m.read_fbit(new));
    let (raw, fbit) = m.unforwarded_read(old);
    assert_eq!(raw, new.0);
    assert!(fbit);
    // Unforwarded_Write can surgically rewrite a forwarding address.
    let third = m.malloc(8);
    m.store_word(third, 43);
    m.unforwarded_write(old, third.0, true);
    assert_eq!(m.load_word(old), 43, "redirected to the third location");
}
