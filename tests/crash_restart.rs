//! Deterministic crash-restart campaigns: every application, stopped at a
//! checkpoint boundary and resumed from the snapshot, must reproduce the
//! uninterrupted run's checksum **and** its complete `RunStats` bit for
//! bit. Torn or cross-configuration snapshots must be rejected with the
//! typed [`MachineFault::CorruptSnapshot`] — never a panic, never a
//! silently wrong result.
//!
//! The progress watchdog is exercised at the bottom: induced forwarding
//! livelock is converted into [`MachineFault::NoProgress`] /
//! [`MachineFault::WalkStorm`] within the configured bound.

use memfwd_repro::apps::{
    run, run_ck, App, AppOutput, Checkpointer, CkOutcome, RunConfig, Variant,
};
use memfwd_repro::core::{
    restore_machine, save_machine, Machine, MachineFault, SimConfig, SnapshotError, WatchdogConfig,
};

/// Workload seeds for the campaigns (3 per the acceptance bar).
const CAMPAIGN_SEEDS: [u64; 3] = [0x5eed_f417, 2, 0xdead_beef];

/// Cadence small enough that every smoke-scale app crosses several
/// boundaries.
const EVERY: u64 = 64;

fn cfg_for(seed: u64, variant: Variant) -> RunConfig {
    let mut cfg = RunConfig::new(variant).smoke();
    cfg.seed = seed;
    cfg
}

/// Runs to the `k`-th fired boundary, captures the snapshot, resumes from
/// it, and returns the resumed run's output.
fn crash_and_restart(app: App, cfg: &RunConfig, k: u64) -> (Vec<u8>, AppOutput) {
    let mut ck = Checkpointer::stop_after(k).with_every(EVERY);
    match run_ck(app, cfg, &mut ck) {
        Ok(CkOutcome::Stopped) => {}
        other => panic!("{app}: expected a checkpoint stop at boundary {k}, got {other:?}"),
    }
    let image = ck
        .take_captured()
        .expect("a stopped checkpointer holds the snapshot");
    let mut rck = Checkpointer::disabled().resume_from(image.clone());
    match run_ck(app, cfg, &mut rck) {
        Ok(CkOutcome::Done(out)) => (image, out),
        other => panic!("{app}: resumed run did not complete: {other:?}"),
    }
}

#[test]
fn crash_restart_campaign_all_apps_all_seeds_bit_identical() {
    // 8 apps x 3 seeds: crash at a deterministic boundary, resume from the
    // snapshot, and require the resumed run to be indistinguishable from
    // the uninterrupted one — same checksum AND same complete RunStats.
    for app in App::ALL {
        for seed in CAMPAIGN_SEEDS {
            let cfg = cfg_for(seed, Variant::Optimized);
            let golden = run(app, &cfg).expect("clean run");
            let (_, resumed) = crash_and_restart(app, &cfg, 2);
            assert_eq!(
                resumed.checksum, golden.checksum,
                "{app} seed {seed:#x}: resumed checksum diverged"
            );
            assert_eq!(
                resumed.stats, golden.stats,
                "{app} seed {seed:#x}: resumed RunStats diverged"
            );
        }
    }
}

#[test]
fn every_capture_point_resumes_identically() {
    // The equivalence must hold at whichever boundary the crash lands on,
    // not just one lucky capture point.
    let cfg = cfg_for(CAMPAIGN_SEEDS[0], Variant::Optimized);
    let golden = run(App::Vis, &cfg).expect("clean run");
    for k in 1..=4 {
        let (_, resumed) = crash_and_restart(App::Vis, &cfg, k);
        assert_eq!(resumed.checksum, golden.checksum, "boundary {k}");
        assert_eq!(resumed.stats, golden.stats, "boundary {k}");
    }
}

#[test]
fn original_and_static_variants_restart_identically_too() {
    // Checkpointing must be variant-agnostic: the forwarding-free layouts
    // round-trip through the same snapshot container.
    for variant in [Variant::Original, Variant::Static] {
        let cfg = cfg_for(CAMPAIGN_SEEDS[1], variant);
        let golden = run(App::Eqntott, &cfg).expect("clean run");
        let (_, resumed) = crash_and_restart(App::Eqntott, &cfg, 2);
        assert_eq!(resumed.checksum, golden.checksum, "{variant:?}");
        assert_eq!(resumed.stats, golden.stats, "{variant:?}");
    }
}

#[test]
fn checkpointing_never_perturbs_the_run() {
    // A boundary only reads the machine: a run that checkpoints and is
    // never crashed must match the plain run exactly.
    let cfg = cfg_for(CAMPAIGN_SEEDS[2], Variant::Optimized);
    let golden = run(App::Health, &cfg).expect("clean run");
    let mut ck = Checkpointer::stop_after(u64::MAX).with_every(EVERY);
    match run_ck(App::Health, &cfg, &mut ck) {
        Ok(CkOutcome::Done(out)) => {
            assert_eq!(out.checksum, golden.checksum);
            assert_eq!(out.stats, golden.stats);
            assert!(ck.boundaries_seen() >= 2, "cadence too coarse to test");
        }
        other => panic!("expected completion, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Torn and mismatched snapshots: typed rejection, never a panic or a
// silently wrong resume.
// ---------------------------------------------------------------------------

fn captured_image(app: App, cfg: &RunConfig) -> Vec<u8> {
    let mut ck = Checkpointer::stop_after(2).with_every(EVERY);
    match run_ck(app, cfg, &mut ck) {
        Ok(CkOutcome::Stopped) => ck.take_captured().expect("snapshot"),
        other => panic!("expected a stop, got {other:?}"),
    }
}

fn resume_err(app: App, cfg: &RunConfig, image: Vec<u8>) -> MachineFault {
    let mut ck = Checkpointer::disabled().resume_from(image);
    match run_ck(app, cfg, &mut ck) {
        Err(fault) => fault,
        other => panic!("{app}: corrupt image was accepted: {other:?}"),
    }
}

#[test]
fn truncated_snapshot_is_rejected_typed() {
    let cfg = cfg_for(7, Variant::Optimized);
    let image = captured_image(App::Mst, &cfg);
    for cut in [0, 7, 27, image.len() / 2, image.len() - 1] {
        let fault = resume_err(App::Mst, &cfg, image[..cut].to_vec());
        assert!(
            matches!(fault, MachineFault::CorruptSnapshot { .. }),
            "cut at {cut}: got {fault:?}"
        );
    }
}

#[test]
fn bit_flipped_snapshot_is_rejected_typed() {
    let cfg = cfg_for(7, Variant::Optimized);
    let image = captured_image(App::Compress, &cfg);
    // Flip one bit in the payload: the container checksum must catch it.
    let mut torn = image.clone();
    let mid = torn.len() / 2;
    torn[mid] ^= 0x10;
    assert_eq!(
        resume_err(App::Compress, &cfg, torn),
        MachineFault::CorruptSnapshot {
            error: SnapshotError::BadChecksum
        }
    );
    // Bad magic and unknown version are identified as such.
    let mut bad_magic = image.clone();
    bad_magic[0] ^= 0xFF;
    assert_eq!(
        resume_err(App::Compress, &cfg, bad_magic),
        MachineFault::CorruptSnapshot {
            error: SnapshotError::BadMagic
        }
    );
    let mut bad_version = image;
    bad_version[8] = 0xEE;
    assert!(matches!(
        resume_err(App::Compress, &cfg, bad_version),
        MachineFault::CorruptSnapshot {
            error: SnapshotError::BadVersion { .. }
        }
    ));
}

#[test]
fn cross_configuration_resume_is_rejected_typed() {
    // A snapshot written under one SimConfig must not silently resume
    // under another (the timing model would diverge undetectably).
    let cfg = cfg_for(7, Variant::Optimized);
    let image = captured_image(App::Radiosity, &cfg);
    let mut other = cfg;
    other.sim = other.sim.with_line_bytes(256);
    assert_eq!(
        resume_err(App::Radiosity, &other, image),
        MachineFault::CorruptSnapshot {
            error: SnapshotError::ConfigMismatch
        }
    );
}

#[test]
fn cross_application_resume_is_rejected_typed() {
    // Same SimConfig, wrong host cursor: the application's cursor
    // validation must reject it as corrupt, not misinterpret it.
    let cfg = cfg_for(7, Variant::Optimized);
    let image = captured_image(App::Vis, &cfg);
    let fault = resume_err(App::Mst, &cfg, image);
    assert!(
        matches!(fault, MachineFault::CorruptSnapshot { .. }),
        "got {fault:?}"
    );
}

#[test]
fn cross_run_parameter_resume_is_rejected_typed() {
    // Variant/seed/scale live outside SimConfig, so the container's
    // config fingerprint alone cannot catch them — the cursor's
    // run-parameter stamp must. Without it, a snapshot taken before the
    // variants diverge would silently continue as a hybrid run.
    let cfg = cfg_for(7, Variant::Optimized);
    let image = captured_image(App::Health, &cfg);
    for other in [
        cfg_for(7, Variant::Original),
        cfg_for(8, Variant::Optimized),
    ] {
        assert_eq!(
            resume_err(App::Health, &other, image.clone()),
            MachineFault::CorruptSnapshot {
                error: SnapshotError::ConfigMismatch
            }
        );
    }
}

#[test]
fn snapshot_byte_stream_round_trips_through_the_core_api() {
    // The captured image is a plain `save_machine` container: the core
    // restore returns the identical cursor and a machine whose re-save is
    // byte-identical (restore is lossless).
    let cfg = cfg_for(7, Variant::Optimized);
    let image = captured_image(App::Bh, &cfg);
    let (m, cursor) = restore_machine(&image, cfg.sim).expect("valid image");
    assert_eq!(save_machine(&m, &cursor), image);
}

// ---------------------------------------------------------------------------
// Progress watchdog: induced livelock becomes a typed fault within the
// configured bound instead of an unbounded stall.
// ---------------------------------------------------------------------------

#[test]
fn walk_storm_watchdog_trips_on_induced_livelock() {
    let budget = 64;
    let cfg = SimConfig::default().with_watchdog(WatchdogConfig {
        stall_cycles: None,
        walk_window: 16,
        walk_hop_budget: Some(budget),
    });
    let mut m = Machine::new(cfg);
    // A long acyclic forwarding chain hammered in a loop: each access
    // walks the full chain, so the sliding window's hop volume explodes.
    let blocks: Vec<_> = (0..32).map(|_| m.malloc(8)).collect();
    m.store_word(*blocks.last().unwrap(), 5);
    for w in blocks.windows(2) {
        m.unforwarded_write(w[0], w[1].0, true);
    }
    let mut result = Ok(0);
    let mut accesses = 0u64;
    for _ in 0..1024 {
        accesses += 1;
        result = m.try_load_word(blocks[0]);
        if result.is_err() {
            break;
        }
    }
    match result {
        Err(MachineFault::WalkStorm { hops, window }) => {
            assert!(hops > budget);
            assert_eq!(window, 16);
            // The storm must be declared promptly: within the first window
            // of accesses, not after an unbounded stall.
            assert!(accesses <= 16, "took {accesses} accesses to trip");
        }
        other => panic!("expected WalkStorm, got {other:?}"),
    }
}

#[test]
fn no_progress_watchdog_trips_on_stalled_reference() {
    let cfg = SimConfig::default().with_watchdog(WatchdogConfig {
        stall_cycles: Some(200),
        ..WatchdogConfig::default()
    });
    let mut m = Machine::new(cfg);
    // One reference through a long chain stalls past the bound on its own.
    let blocks: Vec<_> = (0..64).map(|_| m.malloc(8)).collect();
    m.store_word(*blocks.last().unwrap(), 5);
    for w in blocks.windows(2) {
        m.unforwarded_write(w[0], w[1].0, true);
    }
    match m.try_load_word(blocks[0]) {
        Err(MachineFault::NoProgress { stalled, .. }) => assert!(stalled > 200),
        other => panic!("expected NoProgress, got {other:?}"),
    }
}

#[test]
fn watchdog_is_silent_on_healthy_runs() {
    // Generous bounds must never fire across the whole campaign surface.
    let mut cfg = cfg_for(CAMPAIGN_SEEDS[0], Variant::Optimized);
    cfg.sim = cfg.sim.with_watchdog(WatchdogConfig {
        stall_cycles: Some(1 << 20),
        walk_window: 1024,
        walk_hop_budget: Some(1 << 20),
    });
    for app in App::ALL {
        let out = run(app, &cfg);
        assert!(out.is_ok(), "{app}: healthy run tripped the watchdog");
    }
}
