//! Analytic validation: on access patterns with closed-form behaviour, the
//! simulator must match the arithmetic, not just trend the right way.

use memfwd_repro::core::{Machine, SimConfig, Token};

#[test]
fn sequential_stream_misses_exactly_once_per_line() {
    for line in [32u64, 64, 128] {
        let mut m = Machine::new(SimConfig::default().with_line_bytes(line));
        let n_bytes = 1u64 << 18; // 256 KiB: beyond L1, beyond L2? (== L2)
        let a = m.malloc(n_bytes);
        for off in (0..n_bytes).step_by(8) {
            m.load_word(a + off);
        }
        let s = m.finish();
        let want = n_bytes / line;
        // One FULL miss per line exactly; the out-of-order engine runs far
        // enough ahead that same-line neighbours combine as partial misses.
        assert_eq!(
            s.cache.loads.full_misses, want,
            "line {line}: one full miss per line exactly"
        );
        assert_eq!(
            s.cache.loads.l1_hits + s.cache.loads.partial_misses,
            n_bytes / 8 - want
        );
        // And the memory-side traffic is exactly the missed lines.
        assert_eq!(s.bytes_l2_mem, want * line);
    }
}

#[test]
fn repeated_small_working_set_has_only_compulsory_misses() {
    let mut m = Machine::new(SimConfig::default());
    let a = m.malloc(4096); // fits L1 comfortably
    for _round in 0..10 {
        for off in (0..4096).step_by(8) {
            m.load_word(a + off);
        }
    }
    let s = m.finish();
    assert_eq!(s.cache.loads.full_misses, 4096 / 32, "cold fills only");
    assert!(
        s.cache.loads.partial_misses <= 4096 / 8,
        "partial misses can only come from the cold round"
    );
}

#[test]
fn dependent_chase_pays_full_memory_latency_per_hop() {
    let cfg = SimConfig::default();
    let mem_lat = cfg.hierarchy.mem_latency;
    let mut m = Machine::new(cfg);
    // A chain of pointers, each in its own page-distant line.
    let n = 200u64;
    let nodes: Vec<_> = (0..n).map(|_| m.malloc(4096)).collect();
    for w in nodes.windows(2) {
        m.store_word(w[0], w[1].0);
    }
    // Drain the build phase's influence: measure only the chase.
    let start_cycle = m.now();
    let mut p = nodes[0];
    let mut tok = Token::ready();
    for _ in 0..n - 1 {
        let (v, t) = m.load_word_dep(p, tok);
        p = memfwd_repro::tagmem::Addr(v);
        tok = t;
    }
    let elapsed = tok.cycle() - start_cycle;
    // Each hop costs at least the raw memory latency and at most ~2x the
    // full L1+L2+mem+transfer path (stores may still be draining early on).
    let per_hop = elapsed as f64 / (n - 1) as f64;
    let floor = mem_lat as f64;
    let ceil = 2.2 * (mem_lat as f64 + 30.0);
    assert!(
        per_hop >= floor && per_hop <= ceil,
        "per-hop latency {per_hop:.1} outside [{floor}, {ceil}]"
    );
}

#[test]
fn forwarded_hop_costs_one_extra_serialized_access() {
    // Averaged over many one-hop references in L1-resident state, the
    // forwarding overhead per load is ~(L1 hit + hop penalty).
    let cfg = SimConfig::default();
    let hop_pen = cfg.fwd_hop_penalty;
    let mut m = Machine::new(cfg);
    let old = m.malloc(8);
    let new = m.malloc(8);
    m.store_word(new, 1);
    m.unforwarded_write(old, new.0, true);
    // Warm both lines.
    m.load_word(old);
    let before = *m.fwd_stats();
    for _ in 0..1000 {
        m.load_word(old);
    }
    let after = *m.fwd_stats();
    let fwd_cycles = after.load_fwd_cycles - before.load_fwd_cycles;
    let per_ref = fwd_cycles as f64 / 1000.0;
    let want = 1.0 + hop_pen as f64; // L1 hit on the old word + penalty
    assert!(
        (per_ref - want).abs() <= 1.0,
        "forwarding overhead {per_ref:.2}, expected ~{want}"
    );
}

#[test]
fn bandwidth_identity_holds() {
    // bytes(L1<->L2) == (full misses + L1 writebacks) * line, exactly.
    let mut m = Machine::new(SimConfig::default());
    let a = m.malloc(1 << 20);
    let mut x = 1u64;
    for _ in 0..20_000 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let off = (x >> 33) % ((1 << 20) / 8) * 8;
        if x.is_multiple_of(3) {
            m.store_word(a + off, x);
        } else {
            m.load_word(a + off);
        }
    }
    let s = m.finish();
    let line = 32;
    let fills = s.cache.loads.full_misses + s.cache.stores.full_misses;
    assert_eq!(s.bytes_l1_l2, (fills + s.cache.l1_writebacks) * line);
}

#[test]
fn tag_overhead_is_exactly_one_bit_per_word() {
    let mut m = Machine::new(SimConfig::default());
    let _ = m.malloc(1 << 20);
    let a = m.malloc(8);
    m.store_word(a, 1);
    let s = m.finish();
    assert_eq!(
        s.mem.tag_bytes() * 64,
        s.mem.data_bytes(),
        "1 bit per 64-bit word, the paper's 1.5625% overhead"
    );
}
