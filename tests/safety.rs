//! The paper's central claim, end to end: relocation enabled by memory
//! forwarding is ALWAYS safe. Every application must produce bit-identical
//! results in the original layout, the optimized layout, the optimized
//! layout under perfect forwarding, and with prefetching on top — across
//! seeds and line sizes.

use memfwd_repro::apps::{run_ok as run, App, RunConfig, Variant};

fn smoke(variant: Variant, seed: u64) -> RunConfig {
    let mut cfg = RunConfig::new(variant).smoke();
    cfg.seed = seed;
    cfg
}

#[test]
fn all_apps_safe_across_variants_and_seeds() {
    for app in App::ALL {
        for seed in [1u64, 99, 123_456_789] {
            let orig = run(app, &smoke(Variant::Original, seed));
            let opt = run(app, &smoke(Variant::Optimized, seed));
            assert_eq!(
                orig.checksum, opt.checksum,
                "{app} seed {seed}: optimized layout changed the result"
            );
        }
    }
}

#[test]
fn all_apps_safe_under_perfect_forwarding() {
    for app in App::ALL {
        let opt = run(app, &smoke(Variant::Optimized, 7));
        let mut pcfg = smoke(Variant::Optimized, 7);
        pcfg.sim = pcfg.sim.with_perfect_forwarding();
        let perf = run(app, &pcfg);
        assert_eq!(
            opt.checksum, perf.checksum,
            "{app}: Perf changed the result"
        );
    }
}

#[test]
fn all_apps_safe_across_line_sizes() {
    for app in App::ALL {
        let mut reference = None;
        for lb in [32u64, 64, 128, 256] {
            for variant in [Variant::Original, Variant::Optimized] {
                let mut cfg = smoke(variant, 42);
                cfg.sim = cfg.sim.with_line_bytes(lb);
                let out = run(app, &cfg);
                let r = *reference.get_or_insert(out.checksum);
                assert_eq!(r, out.checksum, "{app} @ {lb}B {variant:?} diverged");
            }
        }
    }
}

#[test]
fn all_apps_safe_with_prefetching() {
    for app in App::ALL {
        let orig = run(app, &smoke(Variant::Original, 3));
        for variant in [Variant::Original, Variant::Optimized] {
            for block in [1u64, 4] {
                let cfg = smoke(variant, 3).with_prefetch(block);
                let out = run(app, &cfg);
                assert_eq!(
                    orig.checksum, out.checksum,
                    "{app} {variant:?} prefetch block {block} diverged"
                );
            }
        }
    }
}

#[test]
fn all_apps_safe_without_dependence_speculation() {
    for app in App::ALL {
        let orig = run(app, &smoke(Variant::Original, 11));
        let mut cfg = smoke(Variant::Optimized, 11);
        cfg.sim.dependence_speculation = false;
        let out = run(app, &cfg);
        assert_eq!(
            orig.checksum, out.checksum,
            "{app}: conservative mode diverged"
        );
    }
}

#[test]
fn static_placement_is_safe_where_supported() {
    for app in [App::Eqntott, App::Vis, App::Health] {
        let orig = run(app, &smoke(Variant::Original, 5));
        let st = run(app, &smoke(Variant::Static, 5));
        assert_eq!(
            orig.checksum, st.checksum,
            "{app}: static placement diverged"
        );
        assert_eq!(st.stats.fwd.relocations, 0);
    }
}

#[test]
fn optimized_variants_actually_relocate() {
    for app in App::ALL {
        let opt = run(app, &smoke(Variant::Optimized, 1));
        assert!(
            opt.stats.fwd.relocations > 0,
            "{app}: the optimized variant never relocated anything"
        );
        let orig = run(app, &smoke(Variant::Original, 1));
        assert_eq!(
            orig.stats.fwd.relocations, 0,
            "{app}: the original variant must not relocate"
        );
    }
}
