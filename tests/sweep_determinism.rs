//! End-to-end determinism of the parallel sweep driver.
//!
//! The `memfwd_sweep` contract is that the report's simulated content —
//! checksum, `RunStats`, refs, cycles — is a pure function of the sweep
//! spec: running the same spec on one worker or many must produce
//! byte-identical reports once the `host_`-prefixed timing lines are
//! stripped. These tests pin that contract for the full 8-application
//! matrix, and pin the golden smoke-scale checksums so a hot-path
//! "optimization" that changes simulated behaviour fails loudly.

use memfwd_apps::{run_ok, App, RunConfig, Scale, Variant};
use memfwd_bench::sweep::{run_sweep, strip_host_lines, validate_report, CellOutcome, SweepSpec};

fn full_smoke_spec() -> SweepSpec {
    SweepSpec {
        apps: App::ALL.to_vec(),
        variants: vec![Variant::Original, Variant::Optimized],
        line_bytes: vec![32],
        mem_latency: vec![75],
        seeds: vec![12345],
        scale: Scale::Smoke,
    }
}

/// The smoke-scale output digests at the default seed, identical across
/// layout variants (that equality is the paper's safety property and is
/// asserted separately below).
const GOLDEN_CHECKSUMS: [(App, u64); 8] = [
    (App::Health, 0x0000000051128597),
    (App::Mst, 0x0000000000000bfa),
    (App::Radiosity, 0x52b908c459595752),
    (App::Vis, 0x7d5ab56b682b228a),
    (App::Eqntott, 0x00000000001bda85),
    (App::Bh, 0x0a597c1c147d4cf1),
    (App::Compress, 0x6ff0327239124e75),
    (App::Smv, 0xde1120526afad793),
];

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let spec = full_smoke_spec();
    let serial = run_sweep(&spec, 1);
    let parallel = run_sweep(&spec, 4);

    // Cell-by-cell, the simulated outputs agree bit for bit.
    assert_eq!(serial.cells.len(), parallel.cells.len());
    for (a, b) in serial.cells.iter().zip(&parallel.cells) {
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.outcome, CellOutcome::Ok, "{:?} failed", a.spec);
        let (ra, rb) = (a.sim().expect("completed"), b.sim().expect("completed"));
        assert_eq!(ra.checksum, rb.checksum, "{:?} checksum diverged", a.spec);
        assert_eq!(ra.stats, rb.stats, "{:?} RunStats diverged", a.spec);
        assert_eq!(ra.refs, rb.refs, "{:?} ref count diverged", a.spec);
    }

    // And so do the serialized reports, modulo host-timing lines.
    assert_eq!(
        strip_host_lines(&serial.to_json()),
        strip_host_lines(&parallel.to_json())
    );
    validate_report(&serial.to_json()).expect("serial report validates");
    validate_report(&parallel.to_json()).expect("parallel report validates");
}

#[test]
fn sweep_cells_match_golden_checksums_and_direct_runs() {
    let spec = full_smoke_spec();
    let report = run_sweep(&spec, 4);
    assert!(report.summary().is_clean(), "no chaos here: every cell ok");

    for cell in &report.cells {
        let r = cell.sim().expect("clean sweep completes every cell");
        let (_, golden) = GOLDEN_CHECKSUMS
            .iter()
            .find(|(app, _)| *app == cell.spec.app)
            .expect("every app has a golden checksum");
        assert_eq!(
            r.checksum,
            *golden,
            "{} ({}) checksum drifted from golden",
            cell.spec.app,
            cell.spec.variant.name()
        );

        // A sweep cell is exactly one direct run — same config, same
        // stats — not an approximation of one.
        let mut cfg = RunConfig::new(cell.spec.variant);
        cfg.scale = Scale::Smoke;
        cfg.seed = cell.spec.seed;
        cfg.sim = cfg.sim.with_line_bytes(cell.spec.line_bytes);
        cfg.sim.hierarchy.mem_latency = cell.spec.mem_latency;
        let direct = run_ok(cell.spec.app, &cfg);
        assert_eq!(r.checksum, direct.checksum);
        assert_eq!(r.stats, direct.stats, "{:?}", cell.spec);
        assert_eq!(r.refs, direct.stats.fwd.loads + direct.stats.fwd.stores);
    }
}
